#include "testing/differential_harness.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "baselines/brnn_star.h"
#include "baselines/range_solver.h"
#include "core/approx_solver.h"
#include "core/incremental.h"
#include "core/multi_facility.h"
#include "core/naive_solver.h"
#include "core/object_store.h"
#include "core/pinocchio_grid_solver.h"
#include "core/pinocchio_hull_solver.h"
#include "core/pinocchio_solver.h"
#include "core/pinocchio_vo_solver.h"
#include "core/prepared_instance.h"
#include "core/query_engine.h"
#include "core/streaming.h"
#include "core/weighted_solver.h"
#include "data/binary_io.h"
#include "data/checkin_dataset.h"
#include "geo/point.h"
#include "parallel/parallel_query.h"
#include "parallel/parallel_solvers.h"
#include "prob/alternative_pfs.h"
#include "prob/influence.h"
#include "prob/power_law.h"
#include "testing/instance_helpers.h"
#include "util/random.h"
#include "util/self_check.h"

namespace pinocchio {
namespace testing_diff {
namespace {

using testing_helpers::InstanceOptions;
using testing_helpers::RandomInstance;

// Decorrelates the shaping stream from RandomInstance's position stream
// (which seeds Rng with the raw seed).
constexpr uint64_t kShapingSalt = 0xA3EC4E5F9C1D2B07ull;

// Independent streams for the query-family checks, so adding them (or
// changing their draws) never perturbs the pinned case generation above.
constexpr uint64_t kSkylineSalt = 0x5D1E8A2C9B4F7E31ull;
constexpr uint64_t kDiverseSalt = 0xC47B26D90E5A813Full;
constexpr uint64_t kStreamingSalt = 0x91F3B7A50C6D2E84ull;
constexpr uint64_t kApproxSalt = 0x7C91E04B5A3D268Full;

// Draws one of the five PF families of the paper (power law of Section 3
// plus the four Figure-16 alternatives).
ProbabilityFunctionPtr DrawPf(Rng& rng, std::string* name) {
  switch (rng.UniformInt(0, 4)) {
    case 0: {
      const double rho = rng.Uniform(0.5, 0.99);
      const double lambda = rng.Uniform(0.5, 2.0);
      *name = "PowerLaw";
      return std::make_shared<PowerLawPF>(rho, lambda);
    }
    case 1: {
      *name = "Logsig";
      return std::make_shared<LogsigPF>(rng.Uniform(0.4, 0.95),
                                        rng.Uniform(500.0, 5000.0));
    }
    case 2: {
      *name = "Convex";
      return std::make_shared<ConvexPF>(rng.Uniform(0.4, 0.95),
                                        rng.Uniform(2000.0, 20000.0));
    }
    case 3: {
      *name = "Concave";
      return std::make_shared<ConcavePF>(rng.Uniform(0.4, 0.95),
                                         rng.Uniform(2000.0, 20000.0));
    }
    default: {
      *name = "Linear";
      return std::make_shared<LinearPF>(rng.Uniform(0.4, 0.95),
                                        rng.Uniform(2000.0, 20000.0));
    }
  }
}

// Injects the degenerate geometries the pruning rules are most sensitive
// to: single-point objects (zero-area MBR), duplicated positions,
// collinear positions (degenerate-height MBR) and duplicated candidates.
void InjectDegenerateGeometry(Rng& rng, ProblemInstance* instance) {
  auto pick_object = [&]() -> MovingObject& {
    return instance->objects[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(instance->objects.size()) - 1))];
  };
  if (!instance->objects.empty()) {
    if (rng.NextDouble() < 0.30) {  // single-point object
      MovingObject& o = pick_object();
      o.positions.resize(1);
    }
    if (rng.NextDouble() < 0.30) {  // duplicated position
      MovingObject& o = pick_object();
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(o.positions.size()) - 1));
      o.positions.push_back(o.positions[i]);
    }
    if (rng.NextDouble() < 0.30) {  // collinear positions (flat MBR)
      MovingObject& o = pick_object();
      for (Point& p : o.positions) p.y = o.positions[0].y;
    }
  }
  if (!instance->candidates.empty() && rng.NextDouble() < 0.25) {
    const size_t j = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(instance->candidates.size()) - 1));
    instance->candidates.push_back(instance->candidates[j]);
  }
}

// Places candidates exactly on an object's pruning-region boundaries:
// minDist == minMaxRadius (the NIB rim, where the <= in Lemma 3 decides)
// and maxDist == minMaxRadius (the IA rim, where Lemma 2's certificate
// flips). Exact to the last rounding of the coordinate arithmetic, which
// is precisely the regime the comparisons must survive.
void InjectBoundaryCandidates(Rng& rng, const SolverConfig& config,
                              ProblemInstance* instance) {
  if (instance->objects.empty() || rng.NextDouble() >= 0.45) return;
  const ObjectStore store(instance->objects, *config.pf, config.tau);
  const auto& records = store.records();
  const ObjectRecord& rec = records[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(records.size()) - 1))];
  const double radius = rec.min_max_radius;
  if (!(radius > 0.0)) return;  // uninfluenceable sentinel or zero
  const double cy = 0.5 * (rec.mbr.min_y() + rec.mbr.max_y());
  // NIB rim: due east of the MBR at exactly `radius` from its edge.
  instance->candidates.push_back({rec.mbr.max_x() + radius, cy});
  // IA rim: the farthest corner is the west one, so solve
  // maxDist((max_x + t, cy)) = hypot(width + t, height / 2) == radius.
  const double half_h = 0.5 * rec.mbr.height();
  if (radius > half_h) {
    const double t =
        std::sqrt(radius * radius - half_h * half_h) - rec.mbr.width();
    if (t >= 0.0) {
      instance->candidates.push_back({rec.mbr.max_x() + t, cy});
    }
  }
}

// With some probability snaps tau to the exact cumulative probability of a
// random (candidate, object) pair — or one ulp to either side — so the
// Pr_c(O) >= tau comparison is exercised exactly at its boundary.
bool MaybeSnapBoundaryTau(Rng& rng, const ProblemInstance& instance,
                          SolverConfig* config) {
  if (instance.objects.empty() || instance.candidates.empty() ||
      rng.NextDouble() >= 0.40) {
    return false;
  }
  const MovingObject& o = instance.objects[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(instance.objects.size()) - 1))];
  const Point& c = instance.candidates[static_cast<size_t>(rng.UniformInt(
      0, static_cast<int64_t>(instance.candidates.size()) - 1))];
  const double pr =
      CumulativeInfluenceProbability(*config->pf, c, o.positions);
  if (!(pr > 0.01) || !(pr < 0.99)) return false;
  const int64_t nudge = rng.UniformInt(-1, 1);
  double tau = pr;
  if (nudge < 0) tau = std::nextafter(pr, 0.0);
  if (nudge > 0) tau = std::nextafter(pr, 1.0);
  config->tau = tau;
  return true;
}

std::string DescribeVectorDiff(const std::string& solver,
                               const std::vector<int64_t>& got,
                               const std::vector<int64_t>& want) {
  std::ostringstream msg;
  msg << solver << ": influence vector differs from NaiveSolver";
  if (got.size() != want.size()) {
    msg << " (size " << got.size() << " vs " << want.size() << ")";
    return msg.str();
  }
  for (size_t j = 0; j < got.size(); ++j) {
    if (got[j] != want[j]) {
      msg << " (first diff at candidate " << j << ": " << got[j] << " vs "
          << want[j] << ")";
      break;
    }
  }
  return msg.str();
}

// Restores the fatal default handler on scope exit.
struct ScopedThrowingViolationHandler {
  ScopedThrowingViolationHandler() {
    SetSelfCheckViolationHandler(
        [](const std::string& message) { throw SelfCheckViolation(message); });
  }
  ~ScopedThrowingViolationHandler() { SetSelfCheckViolationHandler(nullptr); }
};

class CaseChecker {
 public:
  CaseChecker(const FuzzCase& fuzz, FuzzCaseResult* result)
      : fuzz_(fuzz), result_(result) {}

  void Fail(const std::string& message) {
    result_->failures.push_back(message);
  }

  // Runs `body` and converts self-check violations / exceptions into
  // recorded failures so the remaining checks still execute.
  template <typename Fn>
  void Guard(const std::string& what, Fn&& body) {
    try {
      body();
    } catch (const SelfCheckViolation& v) {
      Fail(what + ": self-check violation: " + v.what());
    } catch (const std::exception& e) {
      Fail(what + ": exception: " + e.what());
    }
  }

  void RunAll(bool check_auxiliary) {
    const PreparedInstance prepared(fuzz_.instance, fuzz_.config);
    const SolverResult naive = NaiveSolver().Solve(prepared);

    CheckExactSolver(PinocchioSolver(), prepared, naive);
    CheckExactSolver(PinocchioGridSolver(), prepared, naive);
    CheckExactSolver(PinocchioHullSolver(), prepared, naive);
    CheckExactSolver(ParallelNaiveSolver(), prepared, naive);
    CheckExactSolver(ParallelPinocchioSolver(), prepared, naive);
    CheckVOSolver(PinocchioVOSolver(), prepared, naive);
    CheckVOSolver(PinocchioVOStarSolver(), prepared, naive);
    CheckMorselVO(prepared, naive);
    CheckClassicalBaseline(BrnnStarSolver(), prepared);
    if (!fuzz_.instance.objects.empty()) {
      CheckClassicalBaseline(
          RangeSolver(0.5, RangeSolver::DefaultRangeMeters(fuzz_.instance)),
          prepared);
    }
    if (check_auxiliary) {
      CheckWeighted(prepared, naive);
      CheckMultiFacility(prepared, naive);
      CheckSkyline(prepared, naive);
      CheckDiversified(prepared, naive);
      CheckApprox(prepared, naive);
      CheckIncremental(naive);
      CheckStreaming(naive);
    }
  }

 private:
  void CheckExactSolver(const Solver& solver, const PreparedInstance& prepared,
                        const SolverResult& naive) {
    Guard(solver.Name(), [&] {
      const SolverResult r = solver.Solve(prepared);
      if (r.influence != naive.influence) {
        Fail(DescribeVectorDiff(solver.Name(), r.influence, naive.influence));
      }
      if (r.best_candidate != naive.best_candidate ||
          r.best_influence != naive.best_influence) {
        std::ostringstream msg;
        msg << solver.Name() << ": best (" << r.best_candidate << ", "
            << r.best_influence << ") vs naive (" << naive.best_candidate
            << ", " << naive.best_influence << ")";
        Fail(msg.str());
      }
    });
  }

  void CheckVOSolver(const PinocchioVOSolver& solver,
                     const PreparedInstance& prepared,
                     const SolverResult& naive) {
    Guard(solver.Name(), [&] {
      const SolverResult r = solver.Solve(prepared);
      if (naive.influence.empty()) return;
      if (r.best_influence != naive.best_influence) {
        std::ostringstream msg;
        msg << solver.Name() << ": best influence " << r.best_influence
            << " vs naive " << naive.best_influence;
        Fail(msg.str());
      }
      if (r.best_candidate >= naive.influence.size() ||
          naive.influence[r.best_candidate] != r.best_influence) {
        std::ostringstream msg;
        msg << solver.Name() << ": winner " << r.best_candidate
            << " does not attain its reported influence under naive";
        Fail(msg.str());
      }
      for (size_t j = 0; j < r.influence.size(); ++j) {
        if (r.influence[j] > naive.influence[j]) {
          std::ostringstream msg;
          msg << solver.Name() << ": influence[" << j << "] = "
              << r.influence[j] << " exceeds exact " << naive.influence[j]
              << " (lower-bound contract broken)";
          Fail(msg.str());
          break;
        }
      }
      const size_t exact_k =
          std::min(fuzz_.config.top_k, naive.influence.size());
      for (size_t i = 0; i < exact_k && i < r.ranking.size(); ++i) {
        const uint32_t j = r.ranking[i];
        if (r.influence[j] != naive.influence[j]) {
          std::ostringstream msg;
          msg << solver.Name() << ": top-" << fuzz_.config.top_k
              << " entry " << j << " reported " << r.influence[j]
              << " but exact is " << naive.influence[j];
          Fail(msg.str());
          break;
        }
      }
    });
  }

  // The morsel-parallel PIN-VO engine promises results *bit-identical* to
  // the sequential PinocchioVOSolver — same influence vector (including
  // the inexact lower bounds of Strategy-1-eliminated candidates), same
  // ranking and same stats counters — so it is diffed against the
  // sequential solver, not just the naive oracle. The thread count varies
  // with the seed to sweep different morsel/steal interleavings.
  void CheckMorselVO(const PreparedInstance& prepared,
                     const SolverResult& naive) {
    (void)naive;  // the VO-vs-naive contract is checked on the sequential
                  // solver; bit-identity below transfers it
    const size_t threads = 2 + result_->seed % 3;
    const ParallelPinocchioVOSolver parallel(threads);
    Guard(parallel.Name(), [&] {
      const SolverResult seq = PinocchioVOSolver().Solve(prepared);
      const SolverResult par = parallel.Solve(prepared);
      if (par.influence != seq.influence) {
        Fail(DescribeVectorDiff(parallel.Name() + " vs PIN-VO", par.influence,
                                seq.influence));
      }
      if (par.best_candidate != seq.best_candidate ||
          par.best_influence != seq.best_influence ||
          par.ranking != seq.ranking) {
        std::ostringstream msg;
        msg << parallel.Name() << ": best/ranking diverges from PIN-VO (best "
            << par.best_candidate << "/" << par.best_influence << " vs "
            << seq.best_candidate << "/" << seq.best_influence << ")";
        Fail(msg.str());
      }
      const auto& a = par.stats;
      const auto& b = seq.stats;
      if (a.pairs_pruned_by_ia != b.pairs_pruned_by_ia ||
          a.pairs_pruned_by_nib != b.pairs_pruned_by_nib ||
          a.pairs_validated != b.pairs_validated ||
          a.positions_scanned != b.positions_scanned ||
          a.early_stops != b.early_stops || a.heap_pops != b.heap_pops ||
          a.strategy1_cutoffs != b.strategy1_cutoffs) {
        std::ostringstream msg;
        msg << parallel.Name()
            << ": stats counters diverge from PIN-VO (validated "
            << a.pairs_validated << " vs " << b.pairs_validated
            << ", scanned " << a.positions_scanned << " vs "
            << b.positions_scanned << ", pops " << a.heap_pops << " vs "
            << b.heap_pops << ")";
        Fail(msg.str());
      }
    });
  }

  // The classical-semantics baselines (nearest-neighbour votes, range
  // counts) do not share the PRIME-LS objective, so there is no naive
  // vector to diff against; check determinism and internal consistency
  // instead.
  void CheckClassicalBaseline(const Solver& solver,
                              const PreparedInstance& prepared) {
    Guard(solver.Name(), [&] {
      const SolverResult a = solver.Solve(prepared);
      const SolverResult b = solver.Solve(prepared);
      if (a.influence != b.influence || a.best_candidate != b.best_candidate) {
        Fail(solver.Name() + ": non-deterministic across identical solves");
      }
      if (!a.influence.empty()) {
        if (a.best_candidate >= a.influence.size() ||
            a.influence[a.best_candidate] != a.best_influence) {
          Fail(solver.Name() + ": best_influence inconsistent with vector");
        }
        if (a.best_influence !=
            *std::max_element(a.influence.begin(), a.influence.end())) {
          Fail(solver.Name() + ": best_influence is not the vector maximum");
        }
      }
    });
  }

  void CheckWeighted(const PreparedInstance& prepared,
                     const SolverResult& naive) {
    Guard("Weighted(unit)", [&] {
      const std::vector<double> unit(prepared.store().size(), 1.0);
      const WeightedSolverResult w = SolveWeightedPinocchio(prepared, unit);
      for (size_t j = 0; j < naive.influence.size(); ++j) {
        // Unit weights make the score an integer count; == is exact.
        if (w.score[j] != static_cast<double>(naive.influence[j])) {
          std::ostringstream msg;
          msg << "Weighted(unit): score[" << j << "] = " << w.score[j]
              << " vs naive influence " << naive.influence[j];
          Fail(msg.str());
          break;
        }
      }
      if (!naive.influence.empty()) {
        const WeightedVOResult v = SolveWeightedPinocchioVO(prepared, unit);
        if (v.best_score != static_cast<double>(naive.best_influence)) {
          std::ostringstream msg;
          msg << "WeightedVO(unit): best score " << v.best_score
              << " vs naive best influence " << naive.best_influence;
          Fail(msg.str());
        }
      }
    });
  }

  void CheckMultiFacility(const PreparedInstance& prepared,
                          const SolverResult& naive) {
    if (naive.influence.empty()) return;
    Guard("MultiFacility(k=1)", [&] {
      const MultiFacilityResult mf = SelectFacilities(prepared, 1);
      if (mf.selected.size() != 1 || mf.coverage.size() != 1) {
        Fail("MultiFacility(k=1): expected exactly one selection");
        return;
      }
      // Greedy's first pick is exactly the single-facility optimum.
      if (mf.coverage[0] != naive.best_influence ||
          naive.influence[mf.selected[0]] != naive.best_influence) {
        std::ostringstream msg;
        msg << "MultiFacility(k=1): coverage " << mf.coverage[0]
            << " of candidate " << mf.selected[0]
            << " vs naive best influence " << naive.best_influence;
        Fail(msg.str());
      }
    });
  }

  // Skyline over (influence, cost) against a brute-force O(m^2) domination
  // sweep on the naive influence vector, with three cost regimes: distances
  // from a random origin (the serving path), arbitrary uniform costs, and
  // all-equal costs (every candidate in one group, so the result is exactly
  // the maximum-influence set — the all-dominated edge case). The parallel
  // entry point is then diffed bit-identically against the sequential one.
  void CheckSkyline(const PreparedInstance& prepared,
                    const SolverResult& naive) {
    if (naive.influence.empty()) return;
    Guard("Skyline", [&] {
      Rng rng(result_->seed * 0x9E3779B97F4A7C15ull ^ kSkylineSalt);
      const size_t m = naive.influence.size();
      std::vector<double> cost(m);
      const int64_t mode = rng.UniformInt(0, 2);
      if (mode == 0) {
        const Point origin{rng.Uniform(0.0, 40000.0),
                           rng.Uniform(0.0, 40000.0)};
        for (size_t j = 0; j < m; ++j) {
          cost[j] =
              Distance(prepared.candidate(static_cast<uint32_t>(j)), origin);
        }
      } else if (mode == 1) {
        for (size_t j = 0; j < m; ++j) cost[j] = rng.Uniform(0.0, 100.0);
      } else {
        const double c = rng.Uniform(0.0, 100.0);
        for (size_t j = 0; j < m; ++j) cost[j] = c;
      }

      // Brute-force reference: j survives iff no i strictly dominates it.
      std::vector<uint32_t> expected;
      for (uint32_t j = 0; j < m; ++j) {
        bool dominated = false;
        for (uint32_t i = 0; i < m && !dominated; ++i) {
          dominated = cost[i] <= cost[j] &&
                      naive.influence[i] >= naive.influence[j] &&
                      (cost[i] < cost[j] ||
                       naive.influence[i] > naive.influence[j]);
        }
        if (!dominated) expected.push_back(j);
      }
      std::sort(expected.begin(), expected.end(),
                [&](uint32_t a, uint32_t b) {
                  if (cost[a] != cost[b]) return cost[a] < cost[b];
                  return a < b;
                });

      const query::SkylineResult got = query::SolveSkyline(prepared, cost);
      bool match = got.members.size() == expected.size();
      for (size_t i = 0; match && i < expected.size(); ++i) {
        const query::SkylineMember& member = got.members[i];
        match = member.candidate == expected[i] &&
                member.influence == naive.influence[expected[i]] &&
                member.cost == cost[expected[i]];
      }
      if (!match) {
        std::ostringstream msg;
        msg << "Skyline: " << got.members.size() << " members vs brute-force "
            << expected.size() << " (cost mode " << mode << ")";
        Fail(msg.str());
      }

      const size_t threads = 2 + result_->seed % 3;
      const query::SkylineResult par =
          query::SolveSkylineParallel(prepared, cost, threads);
      bool par_match = par.members.size() == got.members.size() &&
                       par.bound_skipped == got.bound_skipped;
      for (size_t i = 0; par_match && i < got.members.size(); ++i) {
        par_match = par.members[i].candidate == got.members[i].candidate &&
                    par.members[i].influence == got.members[i].influence &&
                    par.members[i].cost == got.members[i].cost;
      }
      if (par_match) {
        const auto& a = par.stats;
        const auto& b = got.stats;
        par_match = a.pairs_pruned_by_ia == b.pairs_pruned_by_ia &&
                    a.pairs_pruned_by_nib == b.pairs_pruned_by_nib &&
                    a.pairs_validated == b.pairs_validated &&
                    a.positions_scanned == b.positions_scanned &&
                    a.early_stops == b.early_stops &&
                    a.heap_pops == b.heap_pops &&
                    a.strategy1_cutoffs == b.strategy1_cutoffs;
      }
      if (!par_match) {
        std::ostringstream msg;
        msg << "SkylineParallel(" << threads
            << "): diverges from sequential skyline";
        Fail(msg.str());
      }
    });
  }

  // The approximate tier certifies: with probability >= 1 - delta the
  // returned bracket contains the exact influence. The harness asserts
  // containment on EVERY seed with zero tolerated violations, so the
  // sampled regime runs at (0.4, 1e-6) — a 46-record budget whose real
  // two-sided failure probability is below 1e-7 even before the
  // without-replacement correction, yet small enough to leave genuine
  // sampling on fuzz-sized verification sets. The epsilon -> 0 regime
  // must degenerate to the exact top-k bit-for-bit, and the delta -> 1
  // regime (a near-vacuous certificate: a 2-record budget) still has to
  // hold the structural invariants. Each regime is additionally diffed
  // bit-identically against the morsel-parallel entry point.
  void CheckApprox(const PreparedInstance& prepared,
                   const SolverResult& naive) {
    if (naive.influence.empty()) return;
    Guard("ApproxTopK", [&] {
      Rng rng(result_->seed * 0x9E3779B97F4A7C15ull ^ kApproxSalt);
      const size_t m = naive.influence.size();
      const size_t k = 1 + result_->seed % 5;
      const auto r = static_cast<int64_t>(prepared.store().size());
      const size_t threads = 2 + result_->seed % 3;

      const SketchParams regimes[] = {
          {0.4, 1e-6, rng.Next()},   // sampling engaged, >5-sigma bracket
          {1e-9, 0.999, rng.Next()},  // budget >= any set: exact tier
          {0.45, 0.999, rng.Next()},  // delta near 1: structural only
      };
      for (size_t which = 0; which < 3; ++which) {
        const SketchParams& params = regimes[which];
        std::ostringstream tag;
        tag << "ApproxTopK[eps=" << params.epsilon
            << ",delta=" << params.delta << "]";
        const ApproxTopKResult res = SolveApproxTopK(prepared, k, params);

        if (res.entries.size() != std::min(k, m)) {
          std::ostringstream msg;
          msg << tag.str() << ": " << res.entries.size() << " entries for k="
              << k << " over " << m << " candidates";
          Fail(msg.str());
          continue;
        }
        for (size_t i = 0; i < res.entries.size(); ++i) {
          const ApproxEntry& e = res.entries[i];
          std::ostringstream msg;
          msg << tag.str() << ": entry " << i << " (candidate " << e.candidate
              << ", estimate " << e.estimate << ", [" << e.lo << ", " << e.hi
              << "])";
          if (e.candidate >= m) {
            Fail(msg.str() + " names a candidate out of range");
            break;
          }
          if (e.lo < 0 || e.hi > r || e.lo > e.estimate || e.estimate > e.hi) {
            Fail(msg.str() + " breaks the bracket invariants");
            break;
          }
          if (i > 0 && res.entries[i - 1].estimate < e.estimate) {
            Fail(msg.str() + " is not in descending estimate order");
            break;
          }
          const int64_t exact = naive.influence[e.candidate];
          if (e.exact && (e.lo != exact || e.hi != exact)) {
            Fail(msg.str() + " is flagged exact but disagrees with naive");
            break;
          }
          if (which == 0) {
            if (exact < e.lo || exact > e.hi) {
              std::ostringstream v;
              v << msg.str() << " does not contain the exact influence "
                << exact;
              Fail(v.str());
              break;
            }
            const auto width_cap = static_cast<int64_t>(
                2.0 * params.epsilon * static_cast<double>(r));
            if (e.hi - e.lo > width_cap) {
              Fail(msg.str() + " is wider than the certified 2*eps*N cap");
              break;
            }
          }
        }

        if (which == 1) {
          // The tiny-epsilon budget covers any verification set, so the
          // answer must be the exact top-k under the solver's tie-break
          // (influence descending, candidate ascending) with nothing
          // sampled away.
          if (res.pairs_skipped != 0) {
            Fail(tag.str() + ": exact-degenerate run still skipped pairs");
          }
          std::vector<uint32_t> expected(m);
          for (uint32_t j = 0; j < m; ++j) expected[j] = j;
          std::sort(expected.begin(), expected.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (naive.influence[a] != naive.influence[b]) {
                        return naive.influence[a] > naive.influence[b];
                      }
                      return a < b;
                    });
          for (size_t i = 0; i < res.entries.size(); ++i) {
            if (!res.entries[i].exact ||
                res.entries[i].candidate != expected[i] ||
                res.entries[i].estimate != naive.influence[expected[i]]) {
              std::ostringstream msg;
              msg << tag.str() << ": entry " << i
                  << " diverges from the exact top-k";
              Fail(msg.str());
              break;
            }
          }
        }

        const ApproxTopKResult par =
            query::SolveApproxTopKParallel(prepared, k, params, threads);
        bool same = par.entries.size() == res.entries.size() &&
                    par.sample_budget == res.sample_budget &&
                    par.pairs_skipped == res.pairs_skipped &&
                    par.pairs_refined == res.pairs_refined;
        for (size_t i = 0; same && i < res.entries.size(); ++i) {
          same = par.entries[i].candidate == res.entries[i].candidate &&
                 par.entries[i].estimate == res.entries[i].estimate &&
                 par.entries[i].lo == res.entries[i].lo &&
                 par.entries[i].hi == res.entries[i].hi &&
                 par.entries[i].exact == res.entries[i].exact;
        }
        if (!same) {
          std::ostringstream msg;
          msg << tag.str() << ": parallel(" << threads
              << ") diverges from the sequential tier";
          Fail(msg.str());
        }
      }
    });
  }

  // Diversified selection against a recompute-every-round greedy built on
  // influence sets derived from first principles (Definition 2 per pair),
  // sweeping min_separation 0 (plain multi-facility, also diffed against
  // SelectFacilities), a random separation up to the candidate diameter,
  // and one larger than the diameter (only a single pick can ever be
  // feasible). The parallel entry point is diffed bit-identically.
  void CheckDiversified(const PreparedInstance& prepared,
                        const SolverResult& naive) {
    if (naive.influence.empty()) return;
    Guard("Diversified", [&] {
      Rng rng(result_->seed * 0x9E3779B97F4A7C15ull ^ kDiverseSalt);
      const ObjectStore& store = prepared.store();
      const size_t m = naive.influence.size();
      const size_t r = store.size();
      const size_t k = 1 + result_->seed % 4;

      double diameter = 0.0;
      for (uint32_t a = 0; a < m; ++a) {
        for (uint32_t b = a + 1; b < m; ++b) {
          diameter = std::max(
              diameter, Distance(prepared.candidate(a), prepared.candidate(b)));
        }
      }
      const int64_t mode = rng.UniformInt(0, 2);
      double delta = 0.0;
      if (mode == 1) delta = rng.Uniform(0.0, std::max(diameter, 1.0));
      if (mode == 2) delta = diameter * 1.5 + 1.0;

      // Influence sets from first principles.
      std::vector<std::vector<uint32_t>> sets(m);
      for (uint32_t j = 0; j < m; ++j) {
        const Point& c = prepared.candidate(j);
        for (uint32_t rec = 0; rec < r; ++rec) {
          if (CumulativeInfluenceProbability(prepared.pf(), c,
                                             store.positions(rec)) >=
              prepared.tau()) {
            sets[j].push_back(rec);
          }
        }
      }

      // Reference greedy: recompute every gain each round, pick the
      // max-gain feasible candidate (smallest index on ties).
      std::vector<uint32_t> want_selected;
      std::vector<int64_t> want_coverage;
      std::vector<char> covered(r, 0);
      std::vector<char> picked(m, 0);
      int64_t covered_count = 0;
      while (want_selected.size() < std::min(k, m)) {
        int64_t best_gain = -1;
        uint32_t best_j = 0;
        for (uint32_t j = 0; j < m; ++j) {
          if (picked[j]) continue;
          bool feasible = true;
          for (uint32_t s : want_selected) {
            if (Distance(prepared.candidate(s), prepared.candidate(j)) <
                delta) {
              feasible = false;
              break;
            }
          }
          if (!feasible) continue;
          int64_t gain = 0;
          for (uint32_t rec : sets[j]) gain += covered[rec] ? 0 : 1;
          if (gain > best_gain) {
            best_gain = gain;
            best_j = j;
          }
        }
        if (best_gain < 0) break;  // nothing feasible remains
        picked[best_j] = 1;
        want_selected.push_back(best_j);
        for (uint32_t rec : sets[best_j]) {
          if (!covered[rec]) {
            covered[rec] = 1;
            ++covered_count;
          }
        }
        want_coverage.push_back(covered_count);
      }

      const query::DiversifiedResult got =
          query::SelectDiversified(prepared, k, delta);
      if (got.selected != want_selected || got.coverage != want_coverage) {
        std::ostringstream msg;
        msg << "Diversified(k=" << k << ", delta=" << delta << "): picked "
            << got.selected.size() << " vs reference greedy "
            << want_selected.size();
        if (!got.selected.empty() && !want_selected.empty() &&
            got.selected[0] != want_selected[0]) {
          msg << " (first pick " << got.selected[0] << " vs "
              << want_selected[0] << ")";
        }
        Fail(msg.str());
      }
      if (mode == 2 && got.selected.size() > 1) {
        Fail("Diversified: multiple picks despite delta beyond the diameter");
      }

      if (delta == 0.0) {
        // min_separation 0 must reduce exactly to multi-facility greedy.
        const MultiFacilityResult mf = SelectFacilities(prepared, k);
        if (mf.selected != got.selected || mf.coverage != got.coverage ||
            mf.gain_evaluations != got.gain_evaluations) {
          Fail("Diversified(delta=0): diverges from SelectFacilities");
        }
      }

      const size_t threads = 2 + result_->seed % 3;
      const query::DiversifiedResult par =
          query::SelectDiversifiedParallel(prepared, k, delta, threads);
      if (par.selected != got.selected || par.coverage != got.coverage ||
          par.gain_evaluations != got.gain_evaluations ||
          par.separation_rejections != got.separation_rejections) {
        std::ostringstream msg;
        msg << "DiversifiedParallel(" << threads
            << "): diverges from sequential";
        Fail(msg.str());
      }
    });
  }

  void CheckIncremental(const SolverResult& naive) {
    Guard("IncrementalPrimeLS", [&] {
      IncrementalPrimeLS inc(fuzz_.instance.candidates, fuzz_.config);
      for (const MovingObject& o : fuzz_.instance.objects) inc.AddObject(o);
      for (size_t j = 0; j < naive.influence.size(); ++j) {
        if (inc.InfluenceOf(j) != naive.influence[j]) {
          std::ostringstream msg;
          msg << "IncrementalPrimeLS: influence[" << j << "] = "
              << inc.InfluenceOf(j) << " vs naive " << naive.influence[j];
          Fail(msg.str());
          break;
        }
      }
      // Delta ops: slide each object's window by appending its own
      // positions again and expiring the oldest, then diff against a
      // from-scratch structure holding the slid windows.
      std::unordered_map<uint32_t, std::deque<Point>> windows;
      for (const MovingObject& o : fuzz_.instance.objects) {
        windows.emplace(o.id,
                        std::deque<Point>(o.positions.begin(),
                                          o.positions.end()));
      }
      Rng rng(result_->seed ^ kStreamingSalt);
      for (const MovingObject& o : fuzz_.instance.objects) {
        std::deque<Point>& window = windows[o.id];
        for (const Point& p : o.positions) {
          if (rng.NextDouble() < 0.5) {
            inc.AppendPosition(o.id, p);
            window.push_back(p);
          }
          if (!window.empty() && rng.NextDouble() < 0.5) {
            inc.ExpireOldestPosition(o.id);
            window.pop_front();
          }
        }
      }
      IncrementalPrimeLS fresh(fuzz_.instance.candidates, fuzz_.config);
      for (const auto& [id, window] : windows) {
        if (window.empty()) continue;
        MovingObject o;
        o.id = id;
        o.positions.assign(window.begin(), window.end());
        fresh.AddObject(o);
      }
      for (size_t j = 0; j < fuzz_.instance.candidates.size(); ++j) {
        if (inc.InfluenceOf(j) != fresh.InfluenceOf(j)) {
          std::ostringstream msg;
          msg << "IncrementalPrimeLS delta ops: influence[" << j << "] = "
              << inc.InfluenceOf(j) << " vs from-scratch "
              << fresh.InfluenceOf(j);
          Fail(msg.str());
          break;
        }
      }
      if (inc.Best() != fresh.Best() || inc.TopK(5) != fresh.TopK(5)) {
        Fail("IncrementalPrimeLS delta ops: Best/TopK diverge from "
             "from-scratch");
      }
    });
  }

  void CheckStreaming(const SolverResult& naive) {
    Guard("StreamingPrimeLS", [&] {
      StreamingPrimeLS::Options opts;
      opts.config = fuzz_.config;
      opts.window_seconds = 1e9;  // everything observed stays live
      StreamingPrimeLS stream(fuzz_.instance.candidates, opts);
      double t = 0.0;
      for (const MovingObject& o : fuzz_.instance.objects) {
        for (const Point& p : o.positions) {
          stream.Observe(o.id, t, p);
          t += 1.0;
        }
      }
      for (size_t j = 0; j < naive.influence.size(); ++j) {
        if (stream.InfluenceOf(j) != naive.influence[j]) {
          std::ostringstream msg;
          msg << "StreamingPrimeLS: influence[" << j << "] = "
              << stream.InfluenceOf(j) << " vs naive " << naive.influence[j];
          Fail(msg.str());
          break;
        }
      }
    });
    Guard("StreamingPrimeLS/window", [&] { CheckStreamingWindowed(); });
  }

  // Sliding-window interleavings over the delta-maintenance path: every
  // streamed state is compared against the legacy rebuild path (exact
  // counter equality) and, at sampled points, against a from-scratch
  // naive solve of the live window. The feed mixes duplicate object ids,
  // zero time steps, horizon-exact steps (an observation landing exactly
  // window_seconds after another keeps the older one live — the closed
  // window) and occasional far AdvanceTo() drains.
  void CheckStreamingWindowed() {
    const ProblemInstance& instance = fuzz_.instance;
    if (instance.objects.empty() || instance.candidates.empty()) return;
    Rng rng(result_->seed ^ kStreamingSalt);
    const size_t m = instance.candidates.size();
    const double window = rng.Uniform(4.0, 32.0);

    StreamingPrimeLS::Options delta_opts;
    delta_opts.config = fuzz_.config;
    delta_opts.window_seconds = window;
    delta_opts.maintenance = StreamingPrimeLS::Maintenance::kDelta;
    StreamingPrimeLS delta(instance.candidates, delta_opts);
    StreamingPrimeLS::Options rebuild_opts = delta_opts;
    rebuild_opts.maintenance = StreamingPrimeLS::Maintenance::kRebuild;
    StreamingPrimeLS rebuild(instance.candidates, rebuild_opts);

    // Mirror of the live window, expired with the engines' strict-<
    // horizon rule, for the from-scratch reference.
    std::unordered_map<uint32_t, std::deque<std::pair<double, Point>>> live;
    auto expire_live = [&](double at) {
      const double horizon = at - window;
      for (auto it = live.begin(); it != live.end();) {
        auto& dq = it->second;
        while (!dq.empty() && dq.front().first < horizon) dq.pop_front();
        it = dq.empty() ? live.erase(it) : std::next(it);
      }
    };
    auto check_vs_rebuild = [&]() -> bool {
      for (size_t j = 0; j < m; ++j) {
        if (delta.InfluenceOf(j) != rebuild.InfluenceOf(j)) {
          std::ostringstream msg;
          msg << "StreamingPrimeLS/window: delta influence[" << j << "] = "
              << delta.InfluenceOf(j) << " vs rebuild "
              << rebuild.InfluenceOf(j) << " at now=" << delta.now();
          Fail(msg.str());
          return false;
        }
      }
      if (delta.Best() != rebuild.Best() ||
          delta.NumLiveObjects() != rebuild.NumLiveObjects() ||
          delta.NumLivePositions() != rebuild.NumLivePositions()) {
        Fail("StreamingPrimeLS/window: delta Best/live-counts diverge from "
             "rebuild");
        return false;
      }
      return true;
    };
    auto check_vs_batch = [&]() -> bool {
      for (size_t j = 0; j < m; ++j) {
        int64_t want = 0;
        std::vector<Point> positions;
        for (const auto& [id, dq] : live) {
          (void)id;
          positions.clear();
          for (const auto& tp : dq) positions.push_back(tp.second);
          if (Influences(*fuzz_.config.pf, instance.candidates[j], positions,
                         fuzz_.config.tau)) {
            ++want;
          }
        }
        if (delta.InfluenceOf(j) != want) {
          std::ostringstream msg;
          msg << "StreamingPrimeLS/window: delta influence[" << j << "] = "
              << delta.InfluenceOf(j) << " vs window batch " << want
              << " at now=" << delta.now();
          Fail(msg.str());
          return false;
        }
      }
      return true;
    };

    double now = 0.0;
    size_t steps = 0;
    for (const MovingObject& o : instance.objects) {
      for (const Point& p : o.positions) {
        const double roll = rng.NextDouble();
        if (roll < 0.25) {
          // burst: same timestamp as the previous observation
        } else if (roll < 0.35) {
          now += window;  // previous observations land exactly on the horizon
        } else {
          now += rng.Uniform(0.0, window / 4.0);
        }
        // Duplicate-id pressure: distinct instance objects fold into a few
        // shared streaming ids.
        const uint32_t id =
            rng.NextDouble() < 0.3 ? o.id % 3 : o.id;
        delta.Observe(id, now, p);
        rebuild.Observe(id, now, p);
        live[id].emplace_back(now, p);
        expire_live(now);
        if (!check_vs_rebuild()) return;
        if (++steps % 13 == 0 && !check_vs_batch()) return;
        if (rng.NextDouble() < 0.03) {
          now += rng.Uniform(0.0, 2.0 * window);
          delta.AdvanceTo(now);
          rebuild.AdvanceTo(now);
          expire_live(now);
          if (!check_vs_rebuild()) return;
        }
      }
    }
    // Full drain, then the final state against the from-scratch batch.
    now += 3.0 * window;
    delta.AdvanceTo(now);
    rebuild.AdvanceTo(now);
    expire_live(now);
    if (!check_vs_rebuild()) return;
    if (!check_vs_batch()) return;
    if (delta.NumLiveObjects() != 0 || delta.NumLivePositions() != 0) {
      Fail("StreamingPrimeLS/window: window not empty after full drain");
    }
  }

  const FuzzCase& fuzz_;
  FuzzCaseResult* result_;
};

// Serialises the failing case: the instance as a binary dataset snapshot
// (candidates as venues, objects verbatim) plus a sidecar text file with
// the exact configuration and the failure list.
std::string DumpReproducer(uint64_t seed, const FuzzCase& fuzz,
                           const FuzzCaseResult& result,
                           const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";

  CheckinDataset dataset;
  dataset.spec.name = "fuzz-" + std::to_string(seed);
  dataset.spec.seed = seed;
  dataset.venues = fuzz.instance.candidates;
  dataset.venue_checkins.assign(fuzz.instance.candidates.size(), 0);
  dataset.objects = fuzz.instance.objects;
  const std::string base = dir + "/fuzz-" + std::to_string(seed);
  SaveDatasetBinaryFile(dataset, base + ".pino");

  std::ofstream sidecar(base + ".txt");
  sidecar.precision(17);
  sidecar << "seed: " << seed << "\n"
          << "pf: " << fuzz.pf_name << " (" << fuzz.config.pf->Name() << ")\n"
          << "tau: " << std::hexfloat << fuzz.config.tau << std::defaultfloat
          << " (" << fuzz.config.tau << ")\n"
          << "boundary_tau: " << (fuzz.boundary_tau ? "yes" : "no") << "\n"
          << "rtree_fanout: " << fuzz.config.rtree_fanout << "\n"
          << "top_k: " << fuzz.config.top_k << "\n"
          << "objects: " << fuzz.instance.objects.size()
          << ", candidates: " << fuzz.instance.candidates.size() << "\n"
          << "replay: fuzz_driver --seed_begin=" << seed
          << " --seed_end=" << seed + 1 << "\n\nfailures:\n";
  for (const std::string& f : result.failures) sidecar << "  - " << f << "\n";
  return base + ".pino";
}

}  // namespace

FuzzCase GenerateFuzzCase(uint64_t seed) {
  Rng rng(seed ^ kShapingSalt);
  FuzzCase fuzz;

  InstanceOptions opts;
  opts.num_objects = static_cast<size_t>(rng.UniformInt(1, 60));
  opts.num_candidates = static_cast<size_t>(rng.UniformInt(1, 40));
  opts.min_positions = 1;
  opts.max_positions = static_cast<size_t>(rng.UniformInt(1, 25));
  opts.extent_meters = rng.Uniform(5000.0, 40000.0);
  opts.roamer_fraction = rng.NextDouble();
  fuzz.instance = RandomInstance(seed, opts);

  fuzz.config.pf = DrawPf(rng, &fuzz.pf_name);
  fuzz.config.tau = rng.Uniform(0.05, 0.95);
  // The R-tree requires fanout >= 4 (rtree.cc enforces it).
  fuzz.config.rtree_fanout = static_cast<size_t>(rng.UniformInt(4, 10));
  fuzz.config.top_k = static_cast<size_t>(rng.UniformInt(1, 3));

  InjectDegenerateGeometry(rng, &fuzz.instance);
  fuzz.boundary_tau = MaybeSnapBoundaryTau(rng, fuzz.instance, &fuzz.config);
  InjectBoundaryCandidates(rng, fuzz.config, &fuzz.instance);
  return fuzz;
}

FuzzCaseResult RunFuzzCase(uint64_t seed, const FuzzOptions& options) {
  FuzzCaseResult result;
  result.seed = seed;

  const ScopedThrowingViolationHandler scoped_handler;
  FuzzCase fuzz;
  try {
    fuzz = GenerateFuzzCase(seed);
    CaseChecker checker(fuzz, &result);
    checker.RunAll(options.check_auxiliary);
  } catch (const SelfCheckViolation& v) {
    result.failures.push_back(std::string("self-check violation: ") +
                              v.what());
  } catch (const std::exception& e) {
    result.failures.push_back(std::string("exception: ") + e.what());
  }

  if (!result.ok() && !options.reproducer_dir.empty()) {
    result.reproducer_path =
        DumpReproducer(seed, fuzz, result, options.reproducer_dir);
  }
  return result;
}

FuzzSummary RunFuzzRange(uint64_t seed_begin, uint64_t seed_end,
                         const FuzzOptions& options, std::ostream* progress) {
  FuzzSummary summary;
  for (uint64_t seed = seed_begin; seed < seed_end; ++seed) {
    if (options.should_stop != nullptr && options.should_stop()) {
      summary.interrupted = true;
      if (progress != nullptr) {
        *progress << "interrupted after " << summary.cases_run
                  << " cases\n";
      }
      break;
    }
    FuzzCaseResult result = RunFuzzCase(seed, options);
    ++summary.cases_run;
    if (!result.ok()) {
      if (progress != nullptr) {
        *progress << "seed " << seed << " FAILED:\n";
        for (const std::string& f : result.failures) {
          *progress << "  - " << f << "\n";
        }
        if (!result.reproducer_path.empty()) {
          *progress << "  reproducer: " << result.reproducer_path << "\n";
        }
      }
      summary.failures.push_back(std::move(result));
    } else if (progress != nullptr && summary.cases_run % 100 == 0) {
      *progress << summary.cases_run << " cases, "
                << summary.failures.size() << " failures\n";
    }
  }
  return summary;
}

}  // namespace testing_diff
}  // namespace pinocchio
