// Moving objects and the PRIME-LS problem instance.

#ifndef PINOCCHIO_CORE_MOVING_OBJECT_H_
#define PINOCCHIO_CORE_MOVING_OBJECT_H_

#include <cstdint>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"

namespace pinocchio {

/// A moving object O = {p_1, ..., p_n}: an id plus the set of its sampled
/// positions in planar metre space (Section 3.1). Positions are unordered —
/// the cumulative influence probability is permutation-invariant.
struct MovingObject {
  uint32_t id = 0;
  std::vector<Point> positions;

  size_t NumPositions() const { return positions.size(); }

  /// Tight MBR of the activity region.
  Mbr ActivityMbr() const { return Mbr::Of(positions); }
};

/// A full PRIME-LS instance: the moving objects Omega and the candidate
/// locations C. PF and tau live in SolverConfig so one instance can be
/// solved under many parameterisations (as the experiments do).
struct ProblemInstance {
  std::vector<MovingObject> objects;
  std::vector<Point> candidates;

  size_t NumObjects() const { return objects.size(); }
  size_t NumCandidates() const { return candidates.size(); }
  /// Total number of positions across all objects (the paper's r*n).
  size_t TotalPositions() const;
};

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_MOVING_OBJECT_H_
