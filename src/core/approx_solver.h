// Approximate top-k with certified error brackets — the sampling-sketch
// tier over the bound-domination engine.
//
// SolveApproxTopK walks the same prune -> order -> validate pipeline as
// PINOCCHIO-VO, but instead of validating a candidate's whole verification
// set it validates the InfluenceSketch's deterministic sample of it
// (prob/influence_sketch.h) and scales the observed influenced fraction
// into a Hoeffding-certified [lo, hi] influence bracket at the caller's
// (eps, delta). A candidate is settled when its bracket
//
//   * misses the running top-k cutoff (hi < cutoff) — discarded with no
//     further work (the engine's Strategy-1 abort handles the mid-walk
//     case on the certain envelope);
//   * clears the cutoff (lo >= cutoff, or the cutoff is not saturated yet)
//     with width <= 2 * eps * num_objects — accepted approximately,
//     carrying the certified bracket;
//   * straddles the cutoff (or is wider than the cap) — the unsampled
//     remainder of its verification set falls back to
//     InfluenceKernel::DecideMany, collapsing the bracket to the exact
//     influence.
//
// Every returned entry's bracket contains the candidate's exact influence
// with probability >= 1 - delta, so the reported estimate (bracket
// midpoint) is within eps * num_objects of the exact influence at the
// same confidence. Entries whose whole verification set was decided
// (small sets, or straddler refinement) are flagged `exact` — their
// bracket is degenerate and unconditional. With eps -> 0 or sample
// budgets >= every set size, the solver degenerates to exact PIN-VO
// answers.
//
// Determinism: samples are pure in (seed, candidate index), the prune
// phase's verification sets are byte-identical across thread counts, and
// the evaluation walk is sequential — so results are bit-identical across
// thread counts. parallel::query::SolveApproxTopKParallel only moves the
// prune and order phases onto the morsel engine and reuses
// SolveApproxTopKOnBrackets verbatim.

#ifndef PINOCCHIO_CORE_APPROX_SOLVER_H_
#define PINOCCHIO_CORE_APPROX_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/prepared_instance.h"
#include "core/query_engine.h"
#include "core/solver.h"
#include "prob/influence_sketch.h"

namespace pinocchio {

/// One approximate top-k answer entry.
struct ApproxEntry {
  uint32_t candidate = 0;
  /// Bracket midpoint — the reported influence estimate.
  int64_t estimate = 0;
  /// Certified influence bracket: contains the exact influence with
  /// probability >= 1 - delta (exactly, when `exact`).
  int64_t lo = 0;
  int64_t hi = 0;
  /// True when every record of the verification set was decided — the
  /// bracket is then [inf(c), inf(c)] unconditionally.
  bool exact = false;
};

struct ApproxTopKResult {
  /// At most k entries, estimate-descending (ties: lo descending, then
  /// candidate index ascending).
  std::vector<ApproxEntry> entries;
  /// Samples decided per candidate whose verification set is larger.
  size_t sample_budget = 0;
  /// Verification-set records SKIPPED by bracket settlement (the work the
  /// exact solver would have validated).
  int64_t pairs_skipped = 0;
  /// Unsampled records decided exactly during straddler refinement.
  int64_t pairs_refined = 0;
  SolverStats stats;
};

/// Approximate top-k over a prepared instance at the sketch's (eps, delta).
ApproxTopKResult SolveApproxTopK(const PreparedInstance& prepared, size_t k,
                                 const SketchParams& params);

/// The evaluation phase against brackets and an order built elsewhere (the
/// parallel path builds both with the morsel engine and reuses this
/// verbatim — results are bit-identical by construction). Consumes the
/// brackets; fills entries, sketch counters and the validation counters of
/// `result->stats`. Timing is the caller's job.
void SolveApproxTopKOnBrackets(const PreparedInstance& prepared,
                               const InfluenceKernel& kernel,
                               const SketchParams& params, size_t k,
                               std::span<const uint32_t> order,
                               query::CandidateBrackets* brackets,
                               ApproxTopKResult* result);

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_APPROX_SOLVER_H_
