// The paper's moving-object 2-D array A_2D (Algorithm 1).
//
// Section 4.3 argues that hierarchical indexes over the objects' activity
// MBRs are ineffective because the MBRs overlap massively (on their datasets
// an average object covers ~55% of each dimension), so PINOCCHIO stores
// objects in a flat array. Each record carries the object's MBR, its
// minMaxRadius (memoised per distinct position count n in a hash map,
// exactly as Algorithm 1 does), and the two pruning regions IA(O) and
// NIB(O).
//
// Positions live in one contiguous columnar arena shared by all records: a
// record holds an (offset, count) span into it instead of owning a
// std::vector<Point>. Validation — the runtime-dominant loop of the cost
// model (Section 5) — therefore streams cache-line-adjacent points instead
// of chasing one heap allocation per object, and the arena can be handed to
// batch kernels (prob/influence_kernel.h) as a single span.
//
// Thread-safety: a const ObjectStore is safe for concurrent readers. The
// minMaxRadius memo is filled during Build/Retune/Append, never lazily on
// the query path, and no const accessor mutates state. Retune() and
// Append() are mutations requiring exclusive access.

#ifndef PINOCCHIO_CORE_OBJECT_STORE_H_
#define PINOCCHIO_CORE_OBJECT_STORE_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "core/moving_object.h"
#include "geo/regions.h"
#include "prob/probability_function.h"

namespace pinocchio {

/// One A_2D record: <A_1D(O_k), IA(O_k), NIB(O_k)> plus derived data.
/// A_1D is the (position_offset, position_count) span into the store's
/// position arena; resolve it with ObjectStore::positions(record).
struct ObjectRecord {
  uint32_t object_id = 0;
  uint32_t position_count = 0;
  size_t position_offset = 0;
  Mbr mbr;
  double min_max_radius = 0.0;
  InfluenceArcsRegion ia;
  NonInfluenceBoundary nib;

  ObjectRecord(uint32_t id, size_t offset, uint32_t count, const Mbr& mbr_in,
               double radius)
      : object_id(id),
        position_count(count),
        position_offset(offset),
        mbr(mbr_in),
        min_max_radius(radius),
        ia(mbr_in, radius),
        nib(mbr_in, radius) {}
};

/// The initialised A_2D for a given (Omega, PF, tau) triple.
class ObjectStore {
 public:
  /// Runs Algorithm 1: computes (and memoises by n) minMaxRadius for every
  /// object and materialises its MBR, IA and NIB. Objects with zero
  /// positions are rejected.
  ObjectStore(const std::vector<MovingObject>& objects,
              const ProbabilityFunction& pf, double tau);

  const std::vector<ObjectRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  double tau() const { return tau_; }

  /// A record's position span A_1D, resolved against the arena. Stable
  /// while the store lives; invalidated (like any arena view) by Append.
  std::span<const Point> positions(const ObjectRecord& rec) const {
    return {arena_.data() + rec.position_offset, rec.position_count};
  }
  std::span<const Point> positions(size_t record_index) const {
    return positions(records_[record_index]);
  }

  /// The whole columnar arena: every object's positions back to back, in
  /// record order.
  std::span<const Point> position_arena() const { return arena_; }

  /// Appends one more object under the store's current (pf, tau),
  /// re-using the minMaxRadius memo — the dynamic-scenario counterpart of
  /// the batch constructor. Invalidates previously obtained spans if the
  /// arena reallocates; records() references stay index-stable.
  const ObjectRecord& Append(const MovingObject& object,
                             const ProbabilityFunction& pf);

  /// The memoised n -> minMaxRadius map (exposed for tests and the
  /// pruning-model ablation).
  const std::unordered_map<size_t, double>& radius_by_n() const {
    return radius_by_n_;
  }

  /// Memoisation hits of the last (re)build: records whose minMaxRadius was
  /// served from the n -> radius map instead of a fresh computation.
  int64_t radius_memo_hits() const {
    return static_cast<int64_t>(records_.size()) -
           static_cast<int64_t>(radius_by_n_.size());
  }

  /// Re-parameterises the store for a new (pf, tau) without copying any
  /// position data: re-runs the memoised minMaxRadius computation and
  /// rebuilds each record's IA/NIB in place. This is the cheap part of
  /// invalidating a prepared instance — MBRs and the arena are reused.
  void Retune(const ProbabilityFunction& pf, double tau);

 private:
  double RadiusFor(const ProbabilityFunction& pf, size_t n);

  double tau_;
  std::vector<Point> arena_;
  std::vector<ObjectRecord> records_;
  std::unordered_map<size_t, double> radius_by_n_;
};

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_OBJECT_STORE_H_
