// PINOCCHIO-VO (Algorithm 3): the pruning phase of PINOCCHIO decoupled from
// validation, plus the two validation optimisations of Section 5 —
// Strategy 1 (upper/lower influence bounds with a max-heap and the global
// maxminInf cut-off) and Strategy 2 (early stopping of the position scan via
// Lemma 4). PINOCCHIO-VO* is the ablation that keeps the optimisations but
// drops the IA/NIB pruning phase (Section 6.1).

#ifndef PINOCCHIO_CORE_PINOCCHIO_VO_SOLVER_H_
#define PINOCCHIO_CORE_PINOCCHIO_VO_SOLVER_H_

#include <span>
#include <vector>

#include "core/prune_pipeline.h"
#include "core/query_engine.h"
#include "core/solver.h"

namespace pinocchio {

class InfluenceKernel;

/// PINOCCHIO-VO solver (paper Algorithm 3).
///
/// Guarantees: the top `config.top_k` entries of the returned ranking carry
/// exact influence values (the paper's algorithm is the `top_k == 1` case;
/// larger k generalises Strategy 1 by using the k-th best validated lower
/// bound as the cut-off). Influences of candidates eliminated by Strategy 1
/// are reported as the lower bounds known at elimination time, with
/// `influence_exact == false`.
class PinocchioVOSolver : public Solver {
 public:
  /// `use_pruning == false` gives PINOCCHIO-VO*: every candidate starts with
  /// bounds [0, r] and every object in its verification set.
  explicit PinocchioVOSolver(bool use_pruning = true)
      : use_pruning_(use_pruning) {}

  std::string Name() const override {
    return use_pruning_ ? "PIN-VO" : "PIN-VO*";
  }

  using Solver::Solve;
  SolverResult Solve(const PreparedInstance& prepared) const override;

 private:
  bool use_pruning_;
};

/// Convenience alias type for the no-pruning ablation.
class PinocchioVOStarSolver : public PinocchioVOSolver {
 public:
  PinocchioVOStarSolver() : PinocchioVOSolver(false) {}
};

// Pieces of Algorithm 3 shared between the sequential solver above and the
// morsel-parallel ParallelPinocchioVOSolver (src/parallel/). The cut-off
// tracker and the ordering predicate moved into the generic query engine
// (core/query_engine.h) — the aliases below keep the historical
// vo_internal:: spellings working for the parallel solver and the tests.
namespace vo_internal {

using query::CutoffTracker;
using query::OrderBefore;

/// The bound-ordered validation phase (Algorithm 3 lines 13-27): walks
/// `order`, validates each candidate's verification set with Strategy 1
/// cut-offs and Strategy 2 early exits, tightening min_inf/max_inf in
/// place and filling the heap_pops / strategy1_cutoffs / pairs_validated /
/// positions_scanned / early_stops counters of `result->stats`. This is
/// query::EvaluateBoundOrdered under the exact top-k cut-off policy
/// (query::TopKCutoffPolicy) with capacity min(top_k, |order|); this phase
/// is inherently sequential — the cut-off after candidate i gates the work
/// spent on candidate i+1 — which is why the parallel solver reuses it
/// verbatim after its parallel prune and order phases.
void ValidateBoundOrdered(
    const PreparedInstance& prepared, const InfluenceKernel& kernel,
    std::span<const uint32_t> order,
    FunctionRef<std::span<const uint32_t>(uint32_t)> verification_set,
    size_t top_k, std::vector<int64_t>* min_inf, std::vector<int64_t>* max_inf,
    SolverResult* result);

}  // namespace vo_internal
}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_PINOCCHIO_VO_SOLVER_H_
