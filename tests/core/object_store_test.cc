#include "core/object_store.h"

#include <gtest/gtest.h>

#include "prob/power_law.h"

namespace pinocchio {
namespace {

MovingObject MakeObject(uint32_t id, std::vector<Point> positions) {
  MovingObject o;
  o.id = id;
  o.positions = std::move(positions);
  return o;
}

TEST(ObjectStoreTest, RecordsCarryAlgorithm1Fields) {
  const PowerLawPF pf(0.9, 1.0);
  const std::vector<MovingObject> objects = {
      MakeObject(0, {{0, 0}, {1000, 0}, {0, 2000}}),
      MakeObject(1, {{500, 500}}),
  };
  const ObjectStore store(objects, pf, 0.7);
  ASSERT_EQ(store.size(), 2u);

  const ObjectRecord& rec0 = store.records()[0];
  EXPECT_EQ(rec0.object_id, 0u);
  EXPECT_EQ(rec0.positions.size(), 3u);
  EXPECT_TRUE(rec0.mbr == Mbr(0, 0, 1000, 2000));
  EXPECT_NEAR(rec0.min_max_radius, pf.MinMaxRadius(0.7, 3), 1e-9);
  EXPECT_DOUBLE_EQ(rec0.ia.radius(), rec0.min_max_radius);
  EXPECT_DOUBLE_EQ(rec0.nib.radius(), rec0.min_max_radius);

  const ObjectRecord& rec1 = store.records()[1];
  EXPECT_DOUBLE_EQ(rec1.mbr.Area(), 0.0);  // degenerate point MBR
  EXPECT_NEAR(rec1.min_max_radius, pf.MinMaxRadius(0.7, 1), 1e-9);
}

TEST(ObjectStoreTest, MemoisesRadiusByPositionCount) {
  const PowerLawPF pf(0.9, 1.0);
  std::vector<MovingObject> objects;
  for (uint32_t i = 0; i < 10; ++i) {
    // Position counts 1, 2, 1, 2, ... -> exactly two distinct n values.
    std::vector<Point> positions(1 + i % 2, Point{double(i), double(i)});
    objects.push_back(MakeObject(i, std::move(positions)));
  }
  const ObjectStore store(objects, pf, 0.5);
  EXPECT_EQ(store.radius_by_n().size(), 2u);
  EXPECT_TRUE(store.radius_by_n().count(1));
  EXPECT_TRUE(store.radius_by_n().count(2));
  // Records with equal n share the memoised value exactly.
  EXPECT_EQ(store.records()[0].min_max_radius,
            store.records()[2].min_max_radius);
}

TEST(ObjectStoreTest, TauIsStored) {
  const PowerLawPF pf(0.9, 1.0);
  const ObjectStore store({MakeObject(0, {{0, 0}})}, pf, 0.3);
  EXPECT_DOUBLE_EQ(store.tau(), 0.3);
}

TEST(ObjectStoreDeathTest, RejectsEmptyObject) {
  const PowerLawPF pf(0.9, 1.0);
  EXPECT_DEATH(
      { ObjectStore store({MakeObject(0, {})}, pf, 0.7); },
      "has no positions");
}

TEST(ObjectStoreDeathTest, RejectsInvalidTau) {
  const PowerLawPF pf(0.9, 1.0);
  EXPECT_DEATH({ ObjectStore store({MakeObject(0, {{0, 0}})}, pf, 0.0); },
               "Check failed");
  EXPECT_DEATH({ ObjectStore store({MakeObject(0, {{0, 0}})}, pf, 1.0); },
               "Check failed");
}

}  // namespace
}  // namespace pinocchio
