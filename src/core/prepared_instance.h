// The engine layer separating index construction from query answering.
//
// The paper's Algorithm 1 (the A_2D object store with memoised minMaxRadius)
// and the bulk-loaded candidate R-tree are preprocessing: they depend only on
// (objects, candidates, pf, tau, rtree_fanout), not on which solver runs or
// how often. A PreparedInstance materialises both once and hands read-only
// views to every Solve(const PreparedInstance&) call, so a serving process
// answers many queries over the same object fleet without paying the build
// per query — and benchmark timers can finally separate `prepare_seconds`
// from `solve_seconds`.
//
// Lifecycle:
//   PreparedInstance prepared(instance, config);   // build once
//   auto r1 = PinocchioVOSolver().Solve(prepared); // query many
//   auto r2 = PinocchioSolver().Solve(prepared);
//   prepared.Reprepare(new_config);                // tau/pf changed: cheap
//   auto r3 = PinocchioVOSolver().Solve(prepared); // re-tune, not re-copy
//
// A PreparedInstance is self-contained: the object store copies position
// arrays (as Algorithm 1 does) and the entry list copies candidate points,
// so the source ProblemInstance may be destroyed after construction.
//
// Thread-safety: after construction completes, a const PreparedInstance is
// safe to query from any number of threads concurrently — every const
// accessor (store(), candidate_rtree(), candidate_entries(), config(), the
// counts) and every Solve(const PreparedInstance&) path reads immutable
// state; there is no lazy initialisation, memoisation or other `mutable`
// state behind the const interface (audited: core/object_store.h,
// index/rtree.h, index/grid_index.h). Reprepare() is a *mutation* and must
// be externally synchronised: no concurrent reader may touch the instance
// while it runs. The serving layer (src/serve/) never reprepares a shared
// instance — it builds a replacement off to the side and swaps an atomic
// snapshot pointer instead.

#ifndef PINOCCHIO_CORE_PREPARED_INSTANCE_H_
#define PINOCCHIO_CORE_PREPARED_INSTANCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/moving_object.h"
#include "core/object_store.h"
#include "core/solver.h"
#include "index/rtree.h"

namespace pinocchio {

/// Build-side statistics of a PreparedInstance — the one-time costs that
/// used to be silently folded into every solver's elapsed time.
struct PreparedBuildStats {
  /// Wall-clock seconds of the most recent (re)build, split by component.
  double build_seconds = 0.0;
  double store_seconds = 0.0;
  double rtree_seconds = 0.0;
  /// Records whose minMaxRadius came from the Algorithm-1 memo instead of
  /// a fresh fixed-point computation, and the number of distinct n values.
  int64_t radius_memo_hits = 0;
  size_t radius_memo_entries = 0;
  /// Shape of the candidate R-tree.
  size_t rtree_height = 0;
  size_t rtree_nodes = 0;
  /// How many times each component was (re)built over the lifetime.
  size_t store_builds = 0;
  size_t rtree_builds = 0;
};

/// Shared, read-only solver state for one (instance, pf, tau, rtree_fanout)
/// key: the initialised A_2D and the bulk-loaded candidate R-tree.
///
/// Thread-safety: after construction (or Reprepare) the accessors are const
/// and safe to share across threads; Reprepare must not race with readers.
class PreparedInstance {
 public:
  /// Builds A_2D (Algorithm 1) over `instance.objects` and bulk-loads the
  /// candidate R-tree over `instance.candidates`. `config.pf` must be set;
  /// objects with zero positions are rejected (as in ObjectStore).
  PreparedInstance(const ProblemInstance& instance, const SolverConfig& config);

  /// Candidate-less preparation for point queries (InfluenceOfCandidate,
  /// ExplainInfluence, PlaceAnywhere): only the object store is built.
  PreparedInstance(const std::vector<MovingObject>& objects,
                   const SolverConfig& config);

  PreparedInstance(PreparedInstance&&) noexcept = default;
  PreparedInstance& operator=(PreparedInstance&&) noexcept = default;
  PreparedInstance(const PreparedInstance&) = delete;
  PreparedInstance& operator=(const PreparedInstance&) = delete;

  /// The configuration the indexes are currently prepared for.
  const SolverConfig& config() const { return config_; }
  const ProbabilityFunction& pf() const { return *config_.pf; }
  double tau() const { return config_.tau; }

  /// The initialised A_2D (Algorithm 1 output).
  const ObjectStore& store() const { return store_; }
  size_t num_objects() const { return store_.size(); }

  /// The bulk-loaded candidate R-tree; entry ids are candidate indices.
  const RTree& candidate_rtree() const { return rtree_; }
  /// The (point, index) entries backing the tree, in candidate order —
  /// entry j is candidate j. Lets grid/ablation solvers build alternative
  /// candidate indexes without re-looping over the instance.
  std::span<const RTreeEntry> candidate_entries() const { return entries_; }
  size_t num_candidates() const { return entries_.size(); }
  const Point& candidate(size_t j) const { return entries_[j].point; }

  /// Re-parameterises the prepared state for `new_config`, rebuilding only
  /// what the change invalidates: a pf/tau change re-tunes the object store
  /// in place (positions and MBRs are reused); a fanout change re-packs the
  /// R-tree from the retained entry list; a top_k change is free.
  void Reprepare(const SolverConfig& new_config);

  const PreparedBuildStats& build_stats() const { return build_stats_; }

 private:
  static ObjectStore BuildStore(const std::vector<MovingObject>& objects,
                                const SolverConfig& config,
                                PreparedBuildStats* stats);

  void BuildRTree();
  void RefreshStoreStats();

  SolverConfig config_;
  PreparedBuildStats build_stats_;
  ObjectStore store_;
  std::vector<RTreeEntry> entries_;
  RTree rtree_;
};

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_PREPARED_INSTANCE_H_
