// Semantic properties of the synthetic check-in generator — the knobs must
// move the distributions the way their documentation claims, since the
// experiment harnesses rely on those behaviours.

#include <set>

#include <gtest/gtest.h>

#include "data/checkin_dataset.h"

namespace pinocchio {
namespace {

DatasetSpec BaseSpec(uint64_t seed) {
  DatasetSpec spec;
  spec.name = "props";
  spec.seed = seed;
  spec.num_users = 400;
  spec.num_venues = 800;
  spec.target_checkins = 16000;
  spec.min_checkins_per_user = 2;
  spec.max_checkins_per_user = 300;
  return spec;
}

double AverageMbrDiagonalKm(const CheckinDataset& dataset) {
  double sum = 0.0;
  for (const MovingObject& o : dataset.objects) {
    sum += 2.0 * o.ActivityMbr().HalfDiagonal() / 1000.0;
  }
  return sum / static_cast<double>(dataset.objects.size());
}

double AverageDistinctVenueRatio(const CheckinDataset& dataset) {
  double sum = 0.0;
  for (const MovingObject& o : dataset.objects) {
    std::set<std::pair<double, double>> distinct;
    for (const Point& p : o.positions) distinct.insert({p.x, p.y});
    sum += static_cast<double>(distinct.size()) /
           static_cast<double>(o.positions.size());
  }
  return sum / static_cast<double>(dataset.objects.size());
}

TEST(GeneratorPropertiesTest, MoreLocalsShrinkActivityRegions) {
  DatasetSpec locals = BaseSpec(100);
  locals.local_user_fraction = 0.95;
  DatasetSpec roamers = BaseSpec(100);
  roamers.local_user_fraction = 0.05;
  const double local_diag =
      AverageMbrDiagonalKm(GenerateCheckinDataset(locals));
  const double roamer_diag =
      AverageMbrDiagonalKm(GenerateCheckinDataset(roamers));
  // MBR diagonals are outlier-driven (one rare far check-in inflates them),
  // so assert a clear directional gap rather than a large factor.
  EXPECT_LT(local_diag, 0.9 * roamer_diag)
      << "locals " << local_diag << " km vs roamers " << roamer_diag;
}

TEST(GeneratorPropertiesTest, RevisitsConcentrateVenueChoice) {
  DatasetSpec loyal = BaseSpec(101);
  loyal.revisit_probability = 0.85;
  DatasetSpec explorer = BaseSpec(101);
  explorer.revisit_probability = 0.0;
  const double loyal_ratio =
      AverageDistinctVenueRatio(GenerateCheckinDataset(loyal));
  const double explorer_ratio =
      AverageDistinctVenueRatio(GenerateCheckinDataset(explorer));
  EXPECT_LT(loyal_ratio, explorer_ratio - 0.2)
      << "loyal " << loyal_ratio << " vs explorer " << explorer_ratio;
}

TEST(GeneratorPropertiesTest, SharperDecayLocalisesCheckins) {
  // Average distance from a user's positions to their own centroid must
  // shrink when the distance decay steepens.
  const auto mean_spread = [](const CheckinDataset& dataset) {
    double total = 0.0;
    size_t count = 0;
    for (const MovingObject& o : dataset.objects) {
      Point centroid{0, 0};
      for (const Point& p : o.positions) {
        centroid.x += p.x;
        centroid.y += p.y;
      }
      centroid.x /= static_cast<double>(o.positions.size());
      centroid.y /= static_cast<double>(o.positions.size());
      for (const Point& p : o.positions) {
        total += Distance(p, centroid);
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  DatasetSpec gentle = BaseSpec(102);
  gentle.decay_lambda = 0.8;
  DatasetSpec sharp = BaseSpec(102);
  sharp.decay_lambda = 3.5;
  EXPECT_LT(mean_spread(GenerateCheckinDataset(sharp)),
            mean_spread(GenerateCheckinDataset(gentle)));
}

TEST(GeneratorPropertiesTest, ClusterSkewConcentratesCheckins) {
  // With a heavier cluster-weight skew, the busiest venues capture a
  // larger share of all check-ins.
  const auto top_decile_share = [](const CheckinDataset& dataset) {
    std::vector<int64_t> counts = dataset.venue_checkins;
    std::sort(counts.rbegin(), counts.rend());
    int64_t total = 0, top = 0;
    const size_t decile = counts.size() / 10;
    for (size_t v = 0; v < counts.size(); ++v) {
      total += counts[v];
      if (v < decile) top += counts[v];
    }
    return static_cast<double>(top) / static_cast<double>(total);
  };
  DatasetSpec flat = BaseSpec(103);
  flat.cluster_weight_alpha = 3.5;   // near-uniform cluster weights
  flat.venue_popularity_alpha = 3.5;
  DatasetSpec skewed = BaseSpec(103);
  skewed.cluster_weight_alpha = 1.2;
  skewed.venue_popularity_alpha = 1.2;
  EXPECT_GT(top_decile_share(GenerateCheckinDataset(skewed)),
            top_decile_share(GenerateCheckinDataset(flat)));
}

TEST(GeneratorPropertiesTest, AnchorsBoundTypicalTravel) {
  // With few anchors and no roaming, nearly all positions should sit
  // within a few sigma of some anchor's hotspot — no teleporting users.
  DatasetSpec spec = BaseSpec(104);
  spec.local_user_fraction = 1.0;
  spec.decay_lambda = 3.0;
  const CheckinDataset dataset = GenerateCheckinDataset(spec);
  size_t near = 0, total = 0;
  for (const MovingObject& o : dataset.objects) {
    // Approximate the user's hotspot by their positions' centroid.
    Point centroid{0, 0};
    for (const Point& p : o.positions) {
      centroid.x += p.x;
      centroid.y += p.y;
    }
    centroid.x /= static_cast<double>(o.positions.size());
    centroid.y /= static_cast<double>(o.positions.size());
    for (const Point& p : o.positions) {
      ++total;
      if (Distance(p, centroid) < 8000.0) ++near;
    }
  }
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(total), 0.8);
}

}  // namespace
}  // namespace pinocchio
