#include "core/pinocchio_hull_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/prepared_instance.h"
#include "geo/convex_hull.h"
#include "prob/influence_kernel.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace pinocchio {
namespace {

// Hull distances are not linked to the validators' per-position distances by
// an exact monotone rounding chain (unlike the MBR min/maxDist predicates),
// so pruning and certifying comparisons keep a few ulps of slack on the safe
// side; rim-adjacent pairs fall through to exact validation.
double UlpsAway(double v, double direction, int steps = 8) {
  for (int i = 0; i < steps; ++i) v = std::nextafter(v, direction);
  return v;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

SolverResult PinocchioHullSolver::Solve(const PreparedInstance& prepared) const {
  Stopwatch watch;
  SolverResult result;
  const size_t m = prepared.num_candidates();
  result.influence.assign(m, 0);
  result.influence_exact = true;
  if (m == 0) {
    internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
    return result;
  }

  const InfluenceKernel kernel(prepared.pf(), prepared.tau());
  const ObjectStore& store = prepared.store();
  const RTree& rtree = prepared.candidate_rtree();

  // minMaxRadius comes memoised from the prepared A_2D; the hulls are this
  // variant's own tighter geometry, built per object during the solve.
  for (const ObjectRecord& rec : store.records()) {
    const double radius = rec.min_max_radius;
    if (radius < 0.0) {
      // Uninfluenceable object: every pair is excluded outright.
      result.stats.pairs_pruned_by_nib += static_cast<int64_t>(m);
      continue;
    }
    const std::span<const Point> positions = store.positions(rec);
    const ConvexPolygon hull(positions);
    const double prune_radius = UlpsAway(radius, kInf);
    const double certify_radius = UlpsAway(radius, -kInf);

    // The NIB region of the hull is contained in the hull bounds inflated
    // by the radius; use that box to probe the R-tree, then decide each
    // hit with exact hull distances. Box misses are pruned without further
    // checks, so widen the box outward past the rounding error.
    const Mbr inflated = hull.Bounds().Inflated(radius);
    const Mbr probe(UlpsAway(inflated.min_x(), -kInf),
                    UlpsAway(inflated.min_y(), -kInf),
                    UlpsAway(inflated.max_x(), kInf),
                    UlpsAway(inflated.max_y(), kInf));
    int64_t inside_nib = 0;
    rtree.QueryRect(probe, [&](const RTreeEntry& e) {
      if (hull.MinDist(e.point) > prune_radius) return;  // outside hull-NIB
      ++inside_nib;
      // Hull-IA: the farthest hull vertex within the radius certifies
      // influence (Theorem 1 with the tighter bound).
      double max_sq = 0.0;
      for (const Point& v : hull.vertices()) {
        max_sq = std::max(max_sq, SquaredDistance(e.point, v));
      }
      if (std::sqrt(max_sq) <= certify_radius) {
        ++result.influence[e.id];
        ++result.stats.pairs_pruned_by_ia;
        return;
      }
      ++result.stats.pairs_validated;
      const InfluenceDecision decision = kernel.Decide(e.point, positions);
      result.stats.positions_scanned += decision.positions_seen;
      if (decision.decided_early) ++result.stats.early_stops;
      if (decision.influenced) ++result.influence[e.id];
    });
    result.stats.pairs_pruned_by_nib += static_cast<int64_t>(m) - inside_nib;
  }

  internal::FinalizeResultFromInfluence(&result);
  internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
  return result;
}

}  // namespace pinocchio
