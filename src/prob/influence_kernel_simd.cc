#include "prob/influence_kernel_simd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "util/logging.h"

#if defined(PINOCCHIO_SIMD_X86)
#include <emmintrin.h>  // SSE2
#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif
#endif

namespace pinocchio {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative widening applied to bucket edge distances before evaluating the
/// PF there. It must dominate every rounding discrepancy between the
/// squared distance a vector lane computes (sub/mul/fma, <= 2 ulps from the
/// exact value) and the scalar reference's sqrt(dx*dx + dy*dy) (<= 3 ulps),
/// so that the scalar path's distance always falls inside the widened
/// bucket whose index the vector lane derived. 32 eps leaves a 5x margin.
constexpr double kEdgeSlack = 32 * std::numeric_limits<double>::epsilon();

/// Per-term relative slack charged against the vector accumulators at
/// decision time. Each faithful addition of same-signed terms contributes
/// at most eps = 2^-53 relative error against the running magnitude; 2^-50
/// covers it with an 8x margin.
constexpr double kSumSlackPerTerm = 0x1p-50;

/// Magnitude (relative to the influence threshold) below which a
/// per-position contribution counts as negligible; positions farther than
/// the matching distance share the overflow bucket. 2^-26 keeps the
/// accumulated overflow lower bound under thresholds for any object with
/// fewer than ~6.7e7 positions.
constexpr double kNegligibleScale = 0x1p-26;

int64_t KeyOf(double q) {
  return static_cast<int64_t>(std::bit_cast<uint64_t>(q) >>
                              simd_internal::kIndexShift);
}

double EdgeOf(int64_t key) {
  return std::bit_cast<double>(static_cast<uint64_t>(key)
                               << simd_internal::kIndexShift);
}

double NudgeDown(double v, int ulps) {
  for (int i = 0; i < ulps; ++i) v = std::nextafter(v, -kInf);
  return v;
}

double NudgeUpCapZero(double v, int ulps) {
  for (int i = 0; i < ulps; ++i) v = std::nextafter(v, kInf);
  return std::min(v, 0.0);
}

/// Computed per-position log-survival term at distance d, mirroring the
/// scalar kernel: a position with PF(d) >= 1 contributes certain influence
/// (-inf in log space).
double GAt(const ProbabilityFunction& pf, double d) {
  const double p = pf(std::max(0.0, d));
  if (p >= 1.0) return -kInf;
  if (p <= 0.0) return 0.0;
  return std::log1p(-p);
}

/// GAt for LOWER bounds, hardened at the certain-influence boundary: if
/// the probe lands within a few ulps of 1, the scalar path may still see
/// p >= 1 (immediate influence) somewhere in the bucket despite the
/// ulp-level monotonicity wobble the 2-ulp nudges otherwise cover, and
/// -inf is the only unconditionally sound lower bound there. (A lower
/// bound can only lose sharpness by being too low, never soundness.)
double GLowerAt(const ProbabilityFunction& pf, double d) {
  const double p = pf(std::max(0.0, d));
  if (p >= 1.0 - 8 * std::numeric_limits<double>::epsilon()) return -kInf;
  if (p <= 0.0) return 0.0;
  return std::log1p(-p);
}

/// Order-preserving bijection double <-> uint64 (IEEE-754 total order),
/// used to bisect the computed expm1 in ulp space.
uint64_t ToOrderedKey(double d) {
  const uint64_t b = std::bit_cast<uint64_t>(d);
  return (b & 0x8000000000000000ull) ? ~b : (b | 0x8000000000000000ull);
}

double FromOrderedKey(uint64_t k) {
  const uint64_t b =
      (k & 0x8000000000000000ull) ? (k & ~0x8000000000000000ull) : ~k;
  return std::bit_cast<double>(b);
}

/// True when the environment value spells "off" (same vocabulary as
/// PINOCCHIO_SELF_CHECK parsing in util/self_check.cc).
bool EnvValueIsOff(const char* env) {
  const std::string value(env);
  return value == "0" || value == "false" || value == "off" ||
         value == "no" || value.empty();
}

#if defined(PINOCCHIO_SIMD_X86)
bool OsSavesYmmState() {
#if defined(__GNUC__) || defined(__clang__)
  uint32_t eax, edx;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (eax & 0x6) == 0x6;  // XMM and YMM state enabled in XCR0
#else
  return false;
#endif
}

SimdTier ProbeX86Tier() {
#if defined(PINOCCHIO_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  unsigned eax, ebx, ecx, edx;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    const bool fma = (ecx & (1u << 12)) != 0;
    unsigned eax7, ebx7, ecx7, edx7;
    const bool avx2 =
        __get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) &&
        (ebx7 & (1u << 5)) != 0;
    if (osxsave && avx && fma && avx2 && OsSavesYmmState()) {
      return SimdTier::kAvx2;
    }
  }
#endif
  return SimdTier::kSse2;
}
#endif  // PINOCCHIO_SIMD_X86

SimdTier ParseTierName(const char* env) {
  const std::string value(env);
  if (value == "scalar") return SimdTier::kScalar;
  if (value == "portable") return SimdTier::kPortable;
  if (value == "sse2") return SimdTier::kSse2;
  if (value == "avx2") return SimdTier::kAvx2;
  PINO_LOG(WARNING) << "unknown PINOCCHIO_SIMD_TIER value \"" << value
                    << "\" (expected scalar|portable|sse2|avx2); "
                       "using the detected tier";
  return DetectCpuSimdTier();
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kPortable:
      return "portable";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdTier DetectCpuSimdTier() {
#if defined(PINOCCHIO_DISABLE_SIMD)
  return SimdTier::kScalar;
#else
  static const SimdTier tier = [] {
#if defined(PINOCCHIO_SIMD_X86)
    return ProbeX86Tier();
#else
    return SimdTier::kPortable;
#endif
  }();
  return tier;
#endif
}

SimdTier ResolveSimdTier() {
  if (const char* force = std::getenv("PINOCCHIO_FORCE_SCALAR")) {
    if (!EnvValueIsOff(force)) return SimdTier::kScalar;
  }
  const SimdTier detected = DetectCpuSimdTier();
  if (const char* requested = std::getenv("PINOCCHIO_SIMD_TIER")) {
    return std::min(ParseTierName(requested), detected);
  }
  return detected;
}

namespace simd_internal {

double AdjustedInfluenceThreshold(const FilterTable& table, uint64_t terms) {
  const double denom =
      1.0 - static_cast<double>(terms) * kSumSlackPerTerm;
  return std::nextafter(table.influence_threshold / denom, -kInf);
}

double AdjustedRejectThreshold(const FilterTable& table, uint64_t terms) {
  const double denom =
      1.0 + static_cast<double>(terms) * kSumSlackPerTerm;
  return std::nextafter(table.reject_threshold / denom, 0.0);
}

void FilterPortable(const FilterTable& table, const Point* candidates,
                    size_t num_candidates, const Point* positions,
                    size_t num_positions, LaneOutcome* outcomes) {
  const double* g_lo = table.g_lo.data();
  const double* g_hi = table.g_hi.data();
  const auto last = static_cast<int64_t>(table.g_lo.size()) - 1;
  const int64_t bias = table.first_key - 1;
  const auto n = static_cast<uint32_t>(num_positions);
  for (size_t j = 0; j < num_candidates; ++j) {
    const double cx = candidates[j].x;
    const double cy = candidates[j].y;
    double acc_lo = 0.0, acc_hi = 0.0;
    uint32_t k = 0;
    bool influenced = false;
    while (k < n) {
      const uint32_t stop = std::min(n, k + kCheckChunk);
      for (; k < stop; ++k) {
        const double dx = cx - positions[k].x;
        const double dy = cy - positions[k].y;
        const double q = dx * dx + dy * dy;
        const int64_t idx = std::clamp<int64_t>(
            (static_cast<int64_t>(std::bit_cast<uint64_t>(q)) >>
             kIndexShift) -
                bias,
            0, last);
        acc_lo += g_lo[idx];
        acc_hi += g_hi[idx];
      }
      if (acc_hi <= AdjustedInfluenceThreshold(table, k)) {
        influenced = true;
        break;
      }
    }
    if (influenced) {
      outcomes[j] = {LaneState::kInfluenced, k};
    } else if (acc_lo >= AdjustedRejectThreshold(table, n)) {
      outcomes[j] = {LaneState::kNotInfluenced, n};
    } else {
      outcomes[j] = {LaneState::kUndecided, 0};
    }
  }
}

#if defined(PINOCCHIO_SIMD_X86)

// Two candidate lanes per iteration: the squared distances are computed
// with SSE2 vector arithmetic, the (tiny) bucket/bound lookups stay scalar
// since SSE2 has neither 64-bit arithmetic compares nor gathers.
void FilterSse2(const FilterTable& table, const Point* candidates,
                size_t num_candidates, const Point* positions,
                size_t num_positions, LaneOutcome* outcomes) {
  const double* g_lo = table.g_lo.data();
  const double* g_hi = table.g_hi.data();
  const auto last = static_cast<int64_t>(table.g_lo.size()) - 1;
  const int64_t bias = table.first_key - 1;
  const auto n = static_cast<uint32_t>(num_positions);

  size_t j = 0;
  for (; j + 2 <= num_candidates; j += 2) {
    const __m128d cx = _mm_set_pd(candidates[j + 1].x, candidates[j].x);
    const __m128d cy = _mm_set_pd(candidates[j + 1].y, candidates[j].y);
    __m128d acc_lo = _mm_setzero_pd();
    __m128d acc_hi = _mm_setzero_pd();
    uint32_t seen[2] = {n, n};
    bool decided[2] = {false, false};
    uint32_t k = 0;
    while (k < n) {
      const uint32_t stop = std::min(n, k + kCheckChunk);
      for (; k < stop; ++k) {
        const __m128d px = _mm_set1_pd(positions[k].x);
        const __m128d py = _mm_set1_pd(positions[k].y);
        const __m128d dx = _mm_sub_pd(cx, px);
        const __m128d dy = _mm_sub_pd(cy, py);
        const __m128d q =
            _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
        alignas(16) uint64_t bits[2];
        _mm_store_si128(reinterpret_cast<__m128i*>(bits),
                        _mm_castpd_si128(q));
        const int64_t i0 = std::clamp<int64_t>(
            (static_cast<int64_t>(bits[0]) >> kIndexShift) - bias, 0, last);
        const int64_t i1 = std::clamp<int64_t>(
            (static_cast<int64_t>(bits[1]) >> kIndexShift) - bias, 0, last);
        acc_lo = _mm_add_pd(acc_lo, _mm_set_pd(g_lo[i1], g_lo[i0]));
        acc_hi = _mm_add_pd(acc_hi, _mm_set_pd(g_hi[i1], g_hi[i0]));
      }
      const __m128d thr = _mm_set1_pd(AdjustedInfluenceThreshold(table, k));
      const int crossed = _mm_movemask_pd(_mm_cmple_pd(acc_hi, thr));
      for (int lane = 0; lane < 2; ++lane) {
        if (!decided[lane] && (crossed & (1 << lane)) != 0) {
          decided[lane] = true;
          seen[lane] = k;
        }
      }
      if (decided[0] && decided[1]) break;
    }
    const __m128d rthr = _mm_set1_pd(AdjustedRejectThreshold(table, n));
    const int rejected = _mm_movemask_pd(_mm_cmpge_pd(acc_lo, rthr));
    for (int lane = 0; lane < 2; ++lane) {
      if (decided[lane]) {
        outcomes[j + lane] = {LaneState::kInfluenced, seen[lane]};
      } else if ((rejected & (1 << lane)) != 0) {
        outcomes[j + lane] = {LaneState::kNotInfluenced, n};
      } else {
        outcomes[j + lane] = {LaneState::kUndecided, 0};
      }
    }
  }
  if (j < num_candidates) {
    FilterPortable(table, candidates + j, num_candidates - j, positions,
                   num_positions, outcomes + j);
  }
}

#endif  // PINOCCHIO_SIMD_X86

}  // namespace simd_internal

SimdInfluenceFilter::SimdInfluenceFilter(const ProbabilityFunction& pf,
                                         double tau,
                                         double early_exit_log_survival,
                                         SimdTier tier)
    : tier_(tier) {
  using simd_internal::kIndexShift;
  simd_internal::FilterTable& t = table_;
  t.influence_threshold = early_exit_log_survival;

  // Smallest log-survival at which the scalar full-scan test
  // -expm1(S) >= tau provably fails. Like the kernel constructor's
  // early-exit nudge (but in the other direction) this leans on the weak
  // monotonicity of the computed expm1; a ulp-space bisection replaces a
  // nextafter walk because near tau = 1 the boundary can sit billions of
  // ulps away from log1p(-tau). One extra ulp of headroom on top.
  const auto test_passes = [tau](double s) { return -std::expm1(s) >= tau; };
  const double lo_probe = std::isfinite(early_exit_log_survival)
                              ? early_exit_log_survival
                              : -746.0;  // expm1 == -1 for everything below
  if (test_passes(0.0)) {
    // tau <= 0: the test passes at every sum; rejection is impossible.
    t.reject_threshold = kInf;
  } else if (!test_passes(lo_probe)) {
    // tau > 1: the test fails at every sum; any finite bound certifies.
    t.reject_threshold = -std::numeric_limits<double>::max();
  } else {
    uint64_t klo = ToOrderedKey(lo_probe);  // passes
    uint64_t khi = ToOrderedKey(0.0);       // fails
    while (khi - klo > 1) {
      const uint64_t mid = klo + (khi - klo) / 2;
      if (test_passes(FromOrderedKey(mid))) {
        klo = mid;
      } else {
        khi = mid;
      }
    }
    t.reject_threshold = std::nextafter(FromOrderedKey(khi), kInf);
  }

  // Table range: [1 m, the distance beyond which one position's
  // contribution is negligible against the influence threshold]. Outside
  // the range the underflow/overflow buckets still carry sound bounds, so
  // the range only affects filter sharpness, never correctness.
  const double q_min = 1.0;
  const double negligible =
      std::max(1.0, -early_exit_log_survival) * kNegligibleScale;
  double d_far = pf.Inverse(-std::expm1(-negligible));
  if (!(d_far > 2.0)) d_far = 2.0;
  d_far = std::min(d_far * 1.05, 1e12);
  const double q_max = d_far * d_far;

  const int64_t first_key = KeyOf(q_min);
  const int64_t last_key = KeyOf(q_max);
  const auto buckets = static_cast<size_t>(last_key - first_key + 1);
  t.first_key = first_key;
  t.g_lo.resize(buckets + 2);
  t.g_hi.resize(buckets + 2);

  // Underflow bucket: d in [0, first edge].
  t.g_lo[0] = NudgeDown(GLowerAt(pf, 0.0), 2);
  t.g_hi[0] = NudgeUpCapZero(
      GAt(pf, std::sqrt(EdgeOf(first_key)) * (1.0 + kEdgeSlack)), 2);
  // Regular buckets: bounds at the (slack-widened) edges; the computed PF
  // is monotone non-increasing in d (property-tested invariant), so edge
  // values bracket every interior value up to the nudged ulps.
  for (size_t i = 0; i < buckets; ++i) {
    const int64_t key = first_key + static_cast<int64_t>(i);
    const double d_lo = std::sqrt(EdgeOf(key)) * (1.0 - kEdgeSlack);
    const double d_hi = std::sqrt(EdgeOf(key + 1)) * (1.0 + kEdgeSlack);
    t.g_lo[i + 1] = NudgeDown(GLowerAt(pf, d_lo), 2);
    t.g_hi[i + 1] = NudgeUpCapZero(GAt(pf, d_hi), 2);
  }
  // Overflow bucket: d at or beyond the last edge; log-survival terms are
  // never positive, so 0 is always a sound upper bound.
  t.g_lo[buckets + 1] = NudgeDown(
      GLowerAt(pf, std::sqrt(EdgeOf(last_key + 1)) * (1.0 - kEdgeSlack)), 2);
  t.g_hi[buckets + 1] = 0.0;
}

void SimdInfluenceFilter::Filter(std::span<const Point> candidates,
                                 std::span<const Point> positions,
                                 simd_internal::LaneOutcome* outcomes) const {
  switch (tier_) {
#if defined(PINOCCHIO_HAVE_AVX2)
    case SimdTier::kAvx2:
      simd_internal::FilterAvx2(table_, candidates.data(), candidates.size(),
                                positions.data(), positions.size(), outcomes);
      return;
#endif
#if defined(PINOCCHIO_SIMD_X86)
    case SimdTier::kSse2:
      simd_internal::FilterSse2(table_, candidates.data(), candidates.size(),
                                positions.data(), positions.size(), outcomes);
      return;
#endif
    default:
      simd_internal::FilterPortable(table_, candidates.data(),
                                    candidates.size(), positions.data(),
                                    positions.size(), outcomes);
  }
}

}  // namespace pinocchio
