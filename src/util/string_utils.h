// Small string helpers shared by the CSV codec and report printers.

#ifndef PINOCCHIO_UTIL_STRING_UTILS_H_
#define PINOCCHIO_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pinocchio {

/// Splits `s` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a double; returns false (leaving `out` untouched) on any trailing
/// garbage or empty input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer with the same strictness as ParseDouble.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats a double with `precision` significant decimal digits after the
/// point, without trailing zeros beyond the first.
std::string FormatDouble(double value, int precision = 6);

}  // namespace pinocchio

#endif  // PINOCCHIO_UTIL_STRING_UTILS_H_
