// Reproduces Fig. 13: the <n, tau> level curve of equal maximum influence.
//
// Following the paper: take Gowalla objects with > 50 positions, build
// instances with exactly n in {10, 20, 30, 40, 50} positions each, fix the
// reference maximum influence at (n = 20, tau = 0.7), and for every other n
// tune tau until the maximum influence matches the reference. The <n, tau>
// pairs form a level curve; a polynomial fit (the paper's Matlab polyfit)
// is evaluated at held-out n in {15, 25, 35, 45}.
//
// Expected shape: the level-curve tau grows with n; optima of all tuned
// instances nearly coincide; the fitted curve predicts the held-out pairs'
// maximum influence within ~1-2%.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "eval/polyfit.h"
#include "util/random.h"

namespace pinocchio {
namespace bench {
namespace {

std::vector<MovingObject> Subsample(
    const std::vector<const MovingObject*>& rich, size_t n, Rng& rng) {
  std::vector<MovingObject> group;
  group.reserve(rich.size());
  for (const MovingObject* o : rich) {
    MovingObject obj;
    obj.id = o->id;
    const auto chosen = rng.SampleWithoutReplacement(o->positions.size(), n);
    for (size_t idx : chosen) obj.positions.push_back(o->positions[idx]);
    group.push_back(std::move(obj));
  }
  return group;
}

struct SolveOutcome {
  int64_t max_influence = 0;
  Point optimum;
  double vo_seconds = 0.0;
  double na_seconds = 0.0;
};

SolveOutcome SolveAt(const std::vector<MovingObject>& objects,
                     const std::vector<Point>& candidates, double tau,
                     bool also_na = false) {
  ProblemInstance instance;
  instance.objects = objects;
  instance.candidates = candidates;
  SolveOutcome out;
  const SolverResult vo =
      PinocchioVOSolver().Solve(instance, DefaultConfig(tau));
  out.max_influence = vo.best_influence;
  out.optimum = candidates[vo.best_candidate];
  out.vo_seconds = vo.stats.elapsed_seconds;
  if (also_na) {
    out.na_seconds =
        NaiveSolver().Solve(instance, DefaultConfig(tau)).stats.elapsed_seconds;
  }
  return out;
}

// Binary search for the tau whose maximum influence matches `target`
// (maximum influence is non-increasing in tau).
double TuneTau(const std::vector<MovingObject>& objects,
               const std::vector<Point>& candidates, int64_t target) {
  double lo = 0.01, hi = 0.99;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const SolveOutcome out = SolveAt(objects, candidates, mid);
    if (out.max_influence > target) {
      lo = mid;  // influence too high -> raise tau
    } else if (out.max_influence < target) {
      hi = mid;
    } else {
      return mid;
    }
  }
  return 0.5 * (lo + hi);
}

void Main() {
  const BenchContext ctx = BenchContext::FromEnv();
  ctx.Announce("fig13_n_tau_levelcurve");

  const CheckinDataset dataset = MakeGowalla(ctx);
  const size_t m = ScaledCandidates(ctx, kDefaultCandidates);
  const CandidateSample sample = SampleCandidates(dataset, m, ctx.seed);

  std::vector<const MovingObject*> rich;
  for (const MovingObject& o : dataset.objects) {
    if (o.positions.size() > 50) rich.push_back(&o);
  }
  std::cout << "  objects with >50 positions: " << rich.size() << "\n";
  if (rich.size() < 10) {
    std::cout << "  too few rich objects at this scale; raise "
                 "PINOCCHIO_BENCH_SCALE\n";
    return;
  }

  Rng rng(ctx.seed * 101 + 3);
  // Reference: n = 20, tau = 0.7.
  const auto ref_objects = Subsample(rich, 20, rng);
  const SolveOutcome ref = SolveAt(ref_objects, sample.points, 0.7, true);
  std::cout << "  reference (n=20, tau=0.7): max influence "
            << ref.max_influence << "\n";

  TablePrinter curve("Fig. 13a: tuned <n, tau> level curve",
                     {"n", "tuned tau", "max influence", "PIN-VO", "NA",
                      "optimum drift (km)"});
  std::vector<double> ns, taus;
  for (size_t n : {10u, 20u, 30u, 40u, 50u}) {
    const auto objects = Subsample(rich, n, rng);
    const double tau =
        (n == 20) ? 0.7 : TuneTau(objects, sample.points, ref.max_influence);
    const SolveOutcome out = SolveAt(objects, sample.points, tau, true);
    ns.push_back(static_cast<double>(n));
    taus.push_back(tau);
    curve.AddRow({std::to_string(n), FormatDouble(tau, 4),
                  std::to_string(out.max_influence),
                  FormatSeconds(out.vo_seconds), FormatSeconds(out.na_seconds),
                  FormatDouble(Distance(out.optimum, ref.optimum) / 1000.0, 3)});
  }
  curve.Print(std::cout);

  // Fit tau(n) with a quadratic (the paper does not state the degree; the
  // curve is smooth and monotone, and degree 2 reproduces it well).
  const auto coef = PolyFit(ns, taus, 2);
  std::cout << "  polyfit tau(n) = " << FormatDouble(coef[0], 5) << " + "
            << FormatDouble(coef[1], 5) << "*n + " << FormatDouble(coef[2], 7)
            << "*n^2\n";

  TablePrinter fit("Fig. 13b: fitted tau at held-out n",
                   {"n", "fitted tau", "max influence", "error vs ref"});
  for (size_t n : {15u, 25u, 35u, 45u}) {
    const double tau =
        std::clamp(PolyEval(coef, static_cast<double>(n)), 0.01, 0.99);
    const auto objects = Subsample(rich, n, rng);
    const SolveOutcome out = SolveAt(objects, sample.points, tau);
    const double err =
        100.0 *
        std::abs(static_cast<double>(out.max_influence - ref.max_influence)) /
        std::max<double>(1.0, static_cast<double>(ref.max_influence));
    fit.AddRow({std::to_string(n), FormatDouble(tau, 4),
                std::to_string(out.max_influence), FormatDouble(err, 2) + "%"});
  }
  fit.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace pinocchio

int main() {
  pinocchio::bench::Main();
  return 0;
}
