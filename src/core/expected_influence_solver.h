// Expected-influence location selection — an extension beyond the paper.
//
// PRIME-LS counts objects whose cumulative probability clears a threshold
// tau; the threshold-free alternative maximises the *expected number of
// influenced objects*, score(c) = sum_O Pr_c(O), in the spirit of the
// influence-maximisation objective of Kempe et al. (the paper's ref [4])
// that motivated Definition 1. The two objectives agree on obvious
// instances but can diverge: the expectation rewards many medium-probability
// objects that a high tau would all reject.
//
// Bounds used for pruning (per object O with n positions and MBR B):
//   Pr_c(O) >= 1 - (1 - PF(maxDist(c,B)))^n   (all positions at the far bound)
//   Pr_c(O) <= 1 - (1 - PF(minDist(c,B)))^n   (all positions at the near bound)
// The branch-and-bound solver accumulates these per candidate, then
// refines candidates whose upper bound still exceeds the best exact score.

#ifndef PINOCCHIO_CORE_EXPECTED_INFLUENCE_SOLVER_H_
#define PINOCCHIO_CORE_EXPECTED_INFLUENCE_SOLVER_H_

#include "core/moving_object.h"
#include "core/solver.h"

namespace pinocchio {

/// Result of expected-influence selection (scores are real-valued, so it
/// does not reuse SolverResult's integer influence vector).
struct ExpectedInfluenceResult {
  uint32_t best_candidate = 0;
  double best_score = 0.0;
  /// Exact score per candidate index; candidates eliminated by the bound
  /// test carry their upper bound instead (flagged below).
  std::vector<double> score;
  std::vector<bool> score_exact;
  /// Candidates whose exact score was computed.
  int64_t candidates_refined = 0;
  double elapsed_seconds = 0.0;
};

/// Exhaustive reference: exact expected influence for every candidate.
ExpectedInfluenceResult SolveExpectedInfluenceNaive(
    const ProblemInstance& instance, const SolverConfig& config);

/// Branch-and-bound: MBR-based upper/lower bounds first, exact refinement
/// in decreasing upper-bound order until the bound drops below the best
/// exact score. The returned best candidate is exactly optimal.
ExpectedInfluenceResult SolveExpectedInfluence(const ProblemInstance& instance,
                                               const SolverConfig& config);

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_EXPECTED_INFLUENCE_SOLVER_H_
