// pinocchio_client — one-shot CLI for the influence query server.
//
// Connects to a running pinocchio_server, issues a single request named
// by --op, prints the response as human-readable text (or a single JSON
// object with --json) and exits. Exit code 0 on a successful response,
// 1 on a server-side error response, 2 on usage errors, 3 on transport
// failure.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "util/flags.h"

namespace {

using namespace pinocchio;
using namespace pinocchio::serve;

constexpr char kUsage[] = R"(Usage: pinocchio_client --op=OP [flags]

  --host=ADDR       Server address (default 127.0.0.1).
  --port=N          Server port (default 7741).
  --json            Print the response as one JSON object.

Operations (--op=...):
  solve             Full solve. --algo=pin-vo|pin|naive, --k=N ranking size.
  topk              Top-k ranking. --k=N.
  probe             Influence at a point. --x=F --y=F.
  whatif            Solve under altered parameters without committing
                    them: --tau=F --rho=F --lambda=F --k=N.
  update            Append a candidate location: --x=F --y=F. (Object
                    updates are exercised by the load generator.)
  stats             Server statistics.
  skyline           Influence/cost skyline; cost is the distance from each
                    candidate to the origin --x=F --y=F.
  diverse           Greedy diversified top-k: --k=N picks, each pair of
                    picks >= --delta=F apart (0 = plain multi-facility).
  observe           Stream one observation into the server's window:
                    --id=N --time=F --x=F --y=F. Requires a server
                    started with --stream-window.
  advance           Advance the server's stream clock: --time=F.
  approx            Approximate top-k with certified error brackets:
                    --k=N --epsilon=F --delta=F --seed=N. Each entry
                    carries [lo, hi] containing the exact influence with
                    probability >= 1 - delta.
)";

void JsonField(std::ostream& out, bool* first, const char* key, double v) {
  out << (*first ? "" : ", ") << '"' << key << "\": " << v;
  *first = false;
}

void JsonField(std::ostream& out, bool* first, const char* key,
               unsigned long long v) {
  out << (*first ? "" : ", ") << '"' << key << "\": " << v;
  *first = false;
}

void JsonField(std::ostream& out, bool* first, const char* key,
               const std::string& v) {
  out << (*first ? "" : ", ") << '"' << key << "\": \"" << v << '"';
  *first = false;
}

int PrintResponse(const Response& response, bool json) {
  std::ostringstream out;
  bool first = true;
  switch (response.type) {
    case ResponseType::kError:
      if (json) {
        out << "{";
        JsonField(out, &first, "error",
                  std::string(ErrorCodeName(response.error.code)));
        JsonField(out, &first, "message", response.error.message);
        out << "}";
        std::cout << out.str() << "\n";
      } else {
        std::cerr << "server error (" << ErrorCodeName(response.error.code)
                  << "): " << response.error.message << "\n";
      }
      return 1;
    case ResponseType::kSolve: {
      const SolveResponse& s = response.solve;
      if (json) {
        out << "{";
        JsonField(out, &first, "epoch", (unsigned long long)s.epoch);
        JsonField(out, &first, "num_objects",
                  (unsigned long long)s.num_objects);
        JsonField(out, &first, "num_candidates",
                  (unsigned long long)s.num_candidates);
        JsonField(out, &first, "best_candidate",
                  (unsigned long long)s.best_candidate);
        out << ", \"best_influence\": " << s.best_influence;
        JsonField(out, &first, "solve_seconds", s.solve_seconds);
        out << ", \"topk\": [";
        for (size_t i = 0; i < s.topk.size(); ++i) {
          out << (i ? ", " : "") << "{\"candidate\": " << s.topk[i].candidate
              << ", \"influence\": " << s.topk[i].influence
              << ", \"influence_exact\": "
              << (s.topk[i].exact ? "true" : "false") << "}";
        }
        out << "]}";
      } else {
        out << "epoch " << s.epoch << " (" << s.num_objects << " objects, "
            << s.num_candidates << " candidates)\n"
            << "best candidate " << s.best_candidate << " influence "
            << s.best_influence << " in " << s.solve_seconds << " s\n";
        for (size_t i = 0; i < s.topk.size(); ++i) {
          out << "  #" << (i + 1) << "  candidate " << s.topk[i].candidate
              << "  influence " << s.topk[i].influence
              << (s.topk[i].exact ? "" : " (lower bound)") << "\n";
        }
      }
      std::cout << out.str() << (json ? "\n" : "");
      return 0;
    }
    case ResponseType::kProbe: {
      const ProbeResponse& p = response.probe;
      if (json) {
        out << "{";
        JsonField(out, &first, "epoch", (unsigned long long)p.epoch);
        JsonField(out, &first, "num_objects",
                  (unsigned long long)p.num_objects);
        out << ", \"influence\": " << p.influence;
        JsonField(out, &first, "solve_seconds", p.solve_seconds);
        out << "}";
      } else {
        out << "epoch " << p.epoch << ": influence " << p.influence
            << " of " << p.num_objects << " objects in " << p.solve_seconds
            << " s";
      }
      std::cout << out.str() << "\n";
      return 0;
    }
    case ResponseType::kUpdate: {
      const UpdateResponse& u = response.update;
      if (json) {
        out << "{";
        JsonField(out, &first, "epoch", (unsigned long long)u.epoch);
        JsonField(out, &first, "pending_updates",
                  (unsigned long long)u.pending_updates);
        out << ", \"accepted\": " << (u.accepted ? "true" : "false") << "}";
      } else {
        out << (u.accepted ? "accepted" : "rejected") << " at epoch "
            << u.epoch << " (" << u.pending_updates
            << " updates pending rebuild)";
      }
      std::cout << out.str() << "\n";
      return u.accepted ? 0 : 1;
    }
    case ResponseType::kStats: {
      const StatsResponse& s = response.stats;
      if (json) {
        out << "{";
        JsonField(out, &first, "epoch", (unsigned long long)s.epoch);
        JsonField(out, &first, "num_objects",
                  (unsigned long long)s.num_objects);
        JsonField(out, &first, "num_candidates",
                  (unsigned long long)s.num_candidates);
        JsonField(out, &first, "snapshot_swaps",
                  (unsigned long long)s.snapshot_swaps);
        JsonField(out, &first, "pending_updates",
                  (unsigned long long)s.pending_updates);
        JsonField(out, &first, "solve_requests",
                  (unsigned long long)s.solve_requests);
        JsonField(out, &first, "topk_requests",
                  (unsigned long long)s.topk_requests);
        JsonField(out, &first, "probe_requests",
                  (unsigned long long)s.probe_requests);
        JsonField(out, &first, "whatif_requests",
                  (unsigned long long)s.whatif_requests);
        JsonField(out, &first, "update_requests",
                  (unsigned long long)s.update_requests);
        JsonField(out, &first, "stats_requests",
                  (unsigned long long)s.stats_requests);
        JsonField(out, &first, "skyline_requests",
                  (unsigned long long)s.skyline_requests);
        JsonField(out, &first, "diverse_requests",
                  (unsigned long long)s.diverse_requests);
        JsonField(out, &first, "error_responses",
                  (unsigned long long)s.error_responses);
        JsonField(out, &first, "uptime_seconds", s.uptime_seconds);
        JsonField(out, &first, "solve_threads",
                  (unsigned long long)s.solve_threads);
        JsonField(out, &first, "solve_busy_seconds", s.solve_busy_seconds);
        JsonField(out, &first, "observe_requests",
                  (unsigned long long)s.observe_requests);
        JsonField(out, &first, "advance_requests",
                  (unsigned long long)s.advance_requests);
        JsonField(out, &first, "stream_observations",
                  (unsigned long long)s.stream_observations);
        JsonField(out, &first, "stream_live_objects",
                  (unsigned long long)s.stream_live_objects);
        JsonField(out, &first, "stream_live_positions",
                  (unsigned long long)s.stream_live_positions);
        JsonField(out, &first, "stream_window_seconds",
                  s.stream_window_seconds);
        JsonField(out, &first, "approx_requests",
                  (unsigned long long)s.approx_requests);
        out << "}";
      } else {
        out << "epoch " << s.epoch << ", " << s.num_objects << " objects, "
            << s.num_candidates << " candidates, " << s.snapshot_swaps
            << " swaps, " << s.pending_updates << " pending updates\n"
            << "solve " << s.solve_requests << "  topk " << s.topk_requests
            << "  probe " << s.probe_requests << "  whatif "
            << s.whatif_requests << "  update " << s.update_requests
            << "  stats " << s.stats_requests << "  skyline "
            << s.skyline_requests << "  diverse " << s.diverse_requests
            << "  approx " << s.approx_requests << "  errors "
            << s.error_responses << "\nuptime " << s.uptime_seconds
            << " s, solve threads " << s.solve_threads << ", solve busy "
            << s.solve_busy_seconds << " s";
        if (s.stream_window_seconds > 0.0) {
          out << "\nstream: window " << s.stream_window_seconds << " s, "
              << s.stream_observations << " observations ("
              << s.observe_requests << " observe, " << s.advance_requests
              << " advance), live " << s.stream_live_objects << " objects / "
              << s.stream_live_positions << " positions";
        }
      }
      std::cout << out.str() << "\n";
      return 0;
    }
    case ResponseType::kSkyline: {
      const SkylineResponse& s = response.skyline;
      if (json) {
        out << "{";
        JsonField(out, &first, "epoch", (unsigned long long)s.epoch);
        JsonField(out, &first, "num_objects",
                  (unsigned long long)s.num_objects);
        JsonField(out, &first, "num_candidates",
                  (unsigned long long)s.num_candidates);
        JsonField(out, &first, "bound_skipped",
                  (unsigned long long)s.bound_skipped);
        JsonField(out, &first, "solve_seconds", s.solve_seconds);
        out << ", \"skyline\": [";
        for (size_t i = 0; i < s.skyline.size(); ++i) {
          out << (i ? ", " : "") << "{\"candidate\": "
              << s.skyline[i].candidate
              << ", \"influence\": " << s.skyline[i].influence
              << ", \"cost\": " << s.skyline[i].cost << "}";
        }
        out << "]}";
      } else {
        out << "epoch " << s.epoch << " (" << s.num_objects << " objects, "
            << s.num_candidates << " candidates)\n"
            << s.skyline.size() << " skyline members ("
            << s.bound_skipped << " bound-skipped) in " << s.solve_seconds
            << " s\n";
        for (size_t i = 0; i < s.skyline.size(); ++i) {
          out << "  candidate " << s.skyline[i].candidate << "  influence "
              << s.skyline[i].influence << "  cost " << s.skyline[i].cost
              << "\n";
        }
      }
      std::cout << out.str() << (json ? "\n" : "");
      return 0;
    }
    case ResponseType::kDiversified: {
      const DiverseResponse& s = response.diverse;
      if (json) {
        out << "{";
        JsonField(out, &first, "epoch", (unsigned long long)s.epoch);
        JsonField(out, &first, "num_objects",
                  (unsigned long long)s.num_objects);
        JsonField(out, &first, "num_candidates",
                  (unsigned long long)s.num_candidates);
        JsonField(out, &first, "gain_evaluations",
                  (unsigned long long)s.gain_evaluations);
        JsonField(out, &first, "solve_seconds", s.solve_seconds);
        out << ", \"selected\": [";
        for (size_t i = 0; i < s.selected.size(); ++i) {
          out << (i ? ", " : "") << "{\"candidate\": "
              << s.selected[i].candidate
              << ", \"coverage\": " << s.selected[i].coverage << "}";
        }
        out << "]}";
      } else {
        out << "epoch " << s.epoch << " (" << s.num_objects << " objects, "
            << s.num_candidates << " candidates)\n"
            << s.selected.size() << " picks (" << s.gain_evaluations
            << " gain evaluations) in " << s.solve_seconds << " s\n";
        for (size_t i = 0; i < s.selected.size(); ++i) {
          out << "  #" << (i + 1) << "  candidate "
              << s.selected[i].candidate << "  coverage "
              << s.selected[i].coverage << "\n";
        }
      }
      std::cout << out.str() << (json ? "\n" : "");
      return 0;
    }
    case ResponseType::kApprox: {
      const ApproxResponse& s = response.approx;
      if (json) {
        out << "{";
        JsonField(out, &first, "epoch", (unsigned long long)s.epoch);
        JsonField(out, &first, "num_objects",
                  (unsigned long long)s.num_objects);
        JsonField(out, &first, "num_candidates",
                  (unsigned long long)s.num_candidates);
        JsonField(out, &first, "solve_seconds", s.solve_seconds);
        out << ", \"entries\": [";
        for (size_t i = 0; i < s.entries.size(); ++i) {
          out << (i ? ", " : "") << "{\"candidate\": "
              << s.entries[i].candidate
              << ", \"estimate\": " << s.entries[i].estimate
              << ", \"lo\": " << s.entries[i].lo
              << ", \"hi\": " << s.entries[i].hi << ", \"exact\": "
              << (s.entries[i].exact ? "true" : "false") << "}";
        }
        out << "]}";
      } else {
        out << "epoch " << s.epoch << " (" << s.num_objects << " objects, "
            << s.num_candidates << " candidates)\n"
            << s.entries.size() << " approximate entries in "
            << s.solve_seconds << " s\n";
        for (size_t i = 0; i < s.entries.size(); ++i) {
          out << "  #" << (i + 1) << "  candidate " << s.entries[i].candidate
              << "  influence ~" << s.entries[i].estimate << "  ["
              << s.entries[i].lo << ", " << s.entries[i].hi << "]"
              << (s.entries[i].exact ? " (exact)" : "") << "\n";
        }
      }
      std::cout << out.str() << (json ? "\n" : "");
      return 0;
    }
    case ResponseType::kStream: {
      const StreamResponse& s = response.stream;
      if (json) {
        out << "{";
        JsonField(out, &first, "now", s.now);
        JsonField(out, &first, "live_objects",
                  (unsigned long long)s.live_objects);
        JsonField(out, &first, "live_positions",
                  (unsigned long long)s.live_positions);
        JsonField(out, &first, "applied", (unsigned long long)s.applied);
        out << ", \"has_best\": " << (s.has_best ? "true" : "false");
        if (s.has_best) {
          JsonField(out, &first, "best_candidate",
                    (unsigned long long)s.best_candidate);
          out << ", \"best_influence\": " << s.best_influence;
        }
        out << "}";
      } else {
        out << "stream now " << s.now << ": " << s.live_objects
            << " objects / " << s.live_positions << " positions live, "
            << s.applied << " applied";
        if (s.has_best) {
          out << "; best candidate " << s.best_candidate << " influence "
              << s.best_influence;
        } else {
          out << "; no best (no live candidate)";
        }
      }
      std::cout << out.str() << "\n";
      return 0;
    }
  }
  std::cerr << "unexpected response type\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.UnknownFlags({"op", "host", "port", "json",
                                           "algo", "k", "x", "y", "tau",
                                           "rho", "lambda", "delta", "id",
                                           "time", "epsilon", "seed", "help"});
  if (!unknown.empty() || !flags.errors().empty()) {
    for (const std::string& name : unknown) {
      std::cerr << "error: unknown flag --" << name << "\n";
    }
    for (const std::string& error : flags.errors()) {
      std::cerr << "error: " << error << "\n";
    }
    std::cerr << kUsage;
    return 2;
  }

  const auto op = flags.GetString("op");
  if (!op.has_value()) {
    std::cerr << "--op is required\n" << kUsage;
    return 2;
  }

  Request request;
  if (*op == "solve") {
    request.type = RequestType::kSolve;
    const std::string algo = flags.GetString("algo", "pin-vo");
    if (algo == "pin-vo") {
      request.solve.algorithm = WireAlgorithm::kPinVO;
    } else if (algo == "pin") {
      request.solve.algorithm = WireAlgorithm::kPin;
    } else if (algo == "naive") {
      request.solve.algorithm = WireAlgorithm::kNaive;
    } else {
      std::cerr << "unknown --algo '" << algo << "'\n";
      return 2;
    }
    request.solve.top_k = static_cast<uint32_t>(flags.GetInt("k", 1));
  } else if (*op == "topk") {
    request.type = RequestType::kTopK;
    request.top_k.k = static_cast<uint32_t>(flags.GetInt("k", 5));
  } else if (*op == "probe") {
    request.type = RequestType::kProbe;
    request.probe.location =
        Point{flags.GetDouble("x", 0.0), flags.GetDouble("y", 0.0)};
  } else if (*op == "whatif") {
    request.type = RequestType::kWhatIf;
    request.what_if.tau = flags.GetDouble("tau", 0.7);
    request.what_if.rho = flags.GetDouble("rho", 0.9);
    request.what_if.lambda = flags.GetDouble("lambda", 1.0);
    request.what_if.top_k = static_cast<uint32_t>(flags.GetInt("k", 1));
  } else if (*op == "update") {
    request.type = RequestType::kUpdate;
    request.update.candidates.push_back(
        Point{flags.GetDouble("x", 0.0), flags.GetDouble("y", 0.0)});
  } else if (*op == "stats") {
    request.type = RequestType::kStats;
  } else if (*op == "skyline") {
    request.type = RequestType::kSkyline;
    request.skyline.cost_origin =
        Point{flags.GetDouble("x", 0.0), flags.GetDouble("y", 0.0)};
  } else if (*op == "diverse") {
    request.type = RequestType::kDiversified;
    request.diversified.k = static_cast<uint32_t>(flags.GetInt("k", 4));
    request.diversified.min_separation = flags.GetDouble("delta", 0.0);
  } else if (*op == "observe") {
    request.type = RequestType::kObserve;
    Observation o;
    o.object_id = static_cast<uint32_t>(flags.GetInt("id", 0));
    o.time = flags.GetDouble("time", 0.0);
    o.position = Point{flags.GetDouble("x", 0.0), flags.GetDouble("y", 0.0)};
    request.observe.observations.push_back(o);
  } else if (*op == "advance") {
    request.type = RequestType::kAdvance;
    request.advance.time = flags.GetDouble("time", 0.0);
  } else if (*op == "approx") {
    request.type = RequestType::kApproxTopK;
    request.approx.k = static_cast<uint32_t>(flags.GetInt("k", 5));
    request.approx.epsilon = flags.GetDouble("epsilon", 0.05);
    request.approx.delta = flags.GetDouble("delta", 0.01);
    request.approx.seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  } else {
    std::cerr << "unknown --op '" << *op << "'\n" << kUsage;
    return 2;
  }

  BlockingClient client;
  const std::string host = flags.GetString("host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(flags.GetInt("port", 7741));
  if (!client.Connect(host, port, /*timeout_seconds=*/5.0)) {
    std::cerr << "cannot connect to " << host << ":" << port << "\n";
    return 3;
  }
  std::string error;
  const auto response = client.Call(request, &error);
  if (!response.has_value()) {
    std::cerr << "transport error: " << error << "\n";
    return 3;
  }
  return PrintResponse(*response, flags.GetBool("json", false));
}
