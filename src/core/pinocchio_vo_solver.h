// PINOCCHIO-VO (Algorithm 3): the pruning phase of PINOCCHIO decoupled from
// validation, plus the two validation optimisations of Section 5 —
// Strategy 1 (upper/lower influence bounds with a max-heap and the global
// maxminInf cut-off) and Strategy 2 (early stopping of the position scan via
// Lemma 4). PINOCCHIO-VO* is the ablation that keeps the optimisations but
// drops the IA/NIB pruning phase (Section 6.1).

#ifndef PINOCCHIO_CORE_PINOCCHIO_VO_SOLVER_H_
#define PINOCCHIO_CORE_PINOCCHIO_VO_SOLVER_H_

#include "core/solver.h"

namespace pinocchio {

/// PINOCCHIO-VO solver (paper Algorithm 3).
///
/// Guarantees: the top `config.top_k` entries of the returned ranking carry
/// exact influence values (the paper's algorithm is the `top_k == 1` case;
/// larger k generalises Strategy 1 by using the k-th best validated lower
/// bound as the cut-off). Influences of candidates eliminated by Strategy 1
/// are reported as the lower bounds known at elimination time, with
/// `influence_exact == false`.
class PinocchioVOSolver : public Solver {
 public:
  /// `use_pruning == false` gives PINOCCHIO-VO*: every candidate starts with
  /// bounds [0, r] and every object in its verification set.
  explicit PinocchioVOSolver(bool use_pruning = true)
      : use_pruning_(use_pruning) {}

  std::string Name() const override {
    return use_pruning_ ? "PIN-VO" : "PIN-VO*";
  }

  using Solver::Solve;
  SolverResult Solve(const PreparedInstance& prepared) const override;

 private:
  bool use_pruning_;
};

/// Convenience alias type for the no-pruning ablation.
class PinocchioVOStarSolver : public PinocchioVOSolver {
 public:
  PinocchioVOStarSolver() : PinocchioVOSolver(false) {}
};

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_PINOCCHIO_VO_SOLVER_H_
