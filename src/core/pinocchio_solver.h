// PINOCCHIO (Algorithm 2): IA/NIB pruning against a candidate R-tree
// followed by sequential validation of the remnant candidates.

#ifndef PINOCCHIO_CORE_PINOCCHIO_SOLVER_H_
#define PINOCCHIO_CORE_PINOCCHIO_SOLVER_H_

#include "core/solver.h"

namespace pinocchio {

/// PINOCCHIO solver (paper Algorithm 2).
///
/// Per object: a range query with the influence-arcs region credits every
/// candidate inside it without validation (Lemma 2); a range query with the
/// non-influence boundary discards every candidate outside it (Lemma 3);
/// the remnant candidates are validated with a full cumulative-probability
/// scan. Influence counts are exact for all candidates.
class PinocchioSolver : public Solver {
 public:
  std::string Name() const override { return "PIN"; }

  using Solver::Solve;
  SolverResult Solve(const PreparedInstance& prepared) const override;
};

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_PINOCCHIO_SOLVER_H_
