#include "tools/cli.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace pinocchio {
namespace cli {
namespace {

struct CliOutcome {
  int code;
  std::string out;
  std::string err;
};

CliOutcome RunCli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = Run(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, NoArgsShowsUsageAndFails) {
  const CliOutcome r = RunCli({});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.out.find("Usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  EXPECT_EQ(RunCli({"--help"}).code, 0);
  EXPECT_EQ(RunCli({"help"}).code, 0);
  EXPECT_EQ(RunCli({"solve", "--help"}).code, 0);
}

TEST(CliTest, UnknownCommandFails) {
  const CliOutcome r = RunCli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, UnknownFlagRejected) {
  const CliOutcome r = RunCli({"generate", "--profil=foursquare",
                               "--out=x.csv"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--profil"), std::string::npos);
}

TEST(CliTest, GenerateRequiresOut) {
  const CliOutcome r = RunCli({"generate", "--profile=foursquare"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(CliTest, GenerateRejectsBadProfileAndScale) {
  EXPECT_EQ(RunCli({"generate", "--profile=mars", "--out=x.csv"}).code, 2);
  EXPECT_EQ(RunCli({"generate", "--profile=gowalla", "--scale=0",
                    "--out=x.csv"})
                .code,
            2);
  EXPECT_EQ(RunCli({"generate", "--profile=gowalla", "--scale=1.5",
                    "--out=x.csv"})
                .code,
            2);
}

TEST(CliTest, GenerateStatsSolvePipelineCsv) {
  const std::string csv = TempPath("cli_pipeline.csv");
  const CliOutcome gen = RunCli({"generate", "--profile=foursquare",
                                 "--scale=0.02", "--seed=3",
                                 "--out=" + csv});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote"), std::string::npos);

  const CliOutcome stats = RunCli({"stats", "--in=" + csv});
  ASSERT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("users"), std::string::npos);
  EXPECT_NE(stats.out.find("check-ins"), std::string::npos);

  const CliOutcome solve = RunCli({"solve", "--in=" + csv,
                                   "--algorithm=pin-vo", "--candidates=50",
                                   "--top=5"});
  ASSERT_EQ(solve.code, 0) << solve.err;
  EXPECT_NE(solve.out.find("Top-5 candidates"), std::string::npos);
  EXPECT_NE(solve.out.find("PIN-VO"), std::string::npos);
}

TEST(CliTest, BinarySnapshotPipeline) {
  const std::string snapshot = TempPath("cli_pipeline.pino");
  const CliOutcome gen = RunCli({"generate", "--profile=gowalla",
                                 "--scale=0.01", "--seed=5",
                                 "--out=" + snapshot});
  ASSERT_EQ(gen.code, 0) << gen.err;

  const CliOutcome stats = RunCli({"stats", "--in=" + snapshot});
  ASSERT_EQ(stats.code, 0) << stats.err;

  // Binary snapshots keep the venue table, so solve reports ground truth.
  const CliOutcome solve = RunCli({"solve", "--in=" + snapshot,
                                   "--candidates=40", "--top=3"});
  ASSERT_EQ(solve.code, 0) << solve.err;
  EXPECT_NE(solve.out.find("actual check-ins"), std::string::npos);
}

TEST(CliTest, SolveAllAlgorithmsAgreeOnWinnerClass) {
  const std::string snapshot = TempPath("cli_algos.pino");
  ASSERT_EQ(RunCli({"generate", "--profile=foursquare", "--scale=0.02",
                    "--seed=11", "--out=" + snapshot})
                .code,
            0);
  for (const std::string algorithm :
       {"na", "na-par", "pin", "pin-par", "pin-grid", "pin-hull", "pin-vo",
        "pin-vo-star", "brnn", "range"}) {
    const CliOutcome r = RunCli({"solve", "--in=" + snapshot,
                                 "--algorithm=" + algorithm,
                                 "--candidates=30", "--top=3"});
    EXPECT_EQ(r.code, 0) << algorithm << ": " << r.err;
    EXPECT_NE(r.out.find("Top-3 candidates"), std::string::npos) << algorithm;
  }
}

TEST(CliTest, SolveRejectsBadInputs) {
  EXPECT_EQ(RunCli({"solve"}).code, 2);
  EXPECT_EQ(RunCli({"solve", "--in=/nonexistent.csv"}).code, 1);
  const std::string snapshot = TempPath("cli_badflags.pino");
  ASSERT_EQ(RunCli({"generate", "--profile=foursquare", "--scale=0.01",
                    "--out=" + snapshot})
                .code,
            0);
  EXPECT_EQ(RunCli({"solve", "--in=" + snapshot, "--algorithm=warp"}).code,
            2);
  EXPECT_EQ(RunCli({"solve", "--in=" + snapshot, "--tau=1.5"}).code, 2);
}

TEST(CliTest, DetailedStatsPrintsDistributions) {
  const std::string snapshot = TempPath("cli_detailed.pino");
  ASSERT_EQ(RunCli({"generate", "--profile=foursquare", "--scale=0.02",
                    "--seed=2", "--out=" + snapshot})
                .code,
            0);
  const CliOutcome r = RunCli({"stats", "--in=" + snapshot, "--detailed"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("check-ins per user: median"), std::string::npos);
  EXPECT_NE(r.out.find("activity-region diagonal"), std::string::npos);
  EXPECT_NE(r.out.find("#"), std::string::npos);  // histogram bars
}

TEST(CliTest, SolveWritesGeoJson) {
  const std::string snapshot = TempPath("cli_geojson.pino");
  const std::string geojson = TempPath("cli_geojson.json");
  ASSERT_EQ(RunCli({"generate", "--profile=foursquare", "--scale=0.02",
                    "--seed=4", "--out=" + snapshot})
                .code,
            0);
  const CliOutcome r = RunCli({"solve", "--in=" + snapshot,
                               "--candidates=30", "--top=5",
                               "--geojson=" + geojson});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote GeoJSON"), std::string::npos);
  std::ifstream file(geojson);
  ASSERT_TRUE(file.is_open());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("FeatureCollection"), std::string::npos);
  EXPECT_NE(content.str().find("\"rank\": 1"), std::string::npos);
}

TEST(CliTest, ExplainReportsInfluencedObjects) {
  const std::string snapshot = TempPath("cli_explain.pino");
  ASSERT_EQ(RunCli({"generate", "--profile=gowalla", "--scale=0.02",
                    "--seed=6", "--out=" + snapshot})
                .code,
            0);
  const CliOutcome r = RunCli({"explain", "--in=" + snapshot,
                               "--candidate=2", "--candidates=40",
                               "--top=5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("influences"), std::string::npos);
  EXPECT_NE(r.out.find("Most strongly influenced objects"),
            std::string::npos);
  EXPECT_NE(r.out.find("Pr_c(O)"), std::string::npos);
}

TEST(CliTest, ExplainValidatesArguments) {
  EXPECT_EQ(RunCli({"explain"}).code, 2);
  const std::string snapshot = TempPath("cli_explain2.pino");
  ASSERT_EQ(RunCli({"generate", "--profile=gowalla", "--scale=0.02",
                    "--seed=6", "--out=" + snapshot})
                .code,
            0);
  EXPECT_EQ(RunCli({"explain", "--in=" + snapshot, "--candidate=999999",
                    "--candidates=10"})
                .code,
            2);
}

TEST(CliTest, DiscretizePipeline) {
  const std::string traj = TempPath("cli_traj.csv");
  {
    std::ofstream f(traj);
    // Two commuters sampled every 10 min for an hour.
    for (int e = 1; e <= 2; ++e) {
      for (int i = 0; i <= 6; ++i) {
        f << e << "," << i * 600 << "," << 1.30 + 0.001 * e + 0.0001 * i
          << "," << 103.80 + 0.001 * i << "\n";
      }
    }
  }
  const std::string checkins = TempPath("cli_traj_checkins.csv");
  const CliOutcome r = RunCli({"discretize", "--in=" + traj,
                               "--out=" + checkins, "--interval-s=600"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("discretized 2 trajectories"), std::string::npos);

  const CliOutcome stats = RunCli({"stats", "--in=" + checkins});
  ASSERT_EQ(stats.code, 0) << stats.err;
  const CliOutcome solve = RunCli({"solve", "--in=" + checkins,
                                   "--candidates=5", "--top=2"});
  EXPECT_EQ(solve.code, 0) << solve.err;
}

TEST(CliTest, DiscretizeValidatesArguments) {
  EXPECT_EQ(RunCli({"discretize"}).code, 2);
  EXPECT_EQ(RunCli({"discretize", "--in=/nonexistent", "--out=/tmp/x",
                    "--interval-s=0"})
                .code,
            2);
  EXPECT_EQ(
      RunCli({"discretize", "--in=/nonexistent", "--out=/tmp/x"}).code, 1);
}

TEST(CliTest, SelectGreedyFacilitySet) {
  const std::string snapshot = TempPath("cli_select.pino");
  ASSERT_EQ(RunCli({"generate", "--profile=gowalla", "--scale=0.02",
                    "--seed=8", "--out=" + snapshot})
                .code,
            0);
  const CliOutcome r = RunCli({"select", "--in=" + snapshot, "--k=3",
                               "--candidates=50"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Greedy facility set"), std::string::npos);
  EXPECT_NE(r.out.find("selected 3 facilities"), std::string::npos);
}

TEST(CliTest, SelectValidatesArguments) {
  EXPECT_EQ(RunCli({"select"}).code, 2);
  const std::string snapshot = TempPath("cli_select2.pino");
  ASSERT_EQ(RunCli({"generate", "--profile=gowalla", "--scale=0.02",
                    "--seed=8", "--out=" + snapshot})
                .code,
            0);
  EXPECT_EQ(RunCli({"select", "--in=" + snapshot, "--k=0"}).code, 2);
}

TEST(CliTest, StatsRequiresInput) {
  EXPECT_EQ(RunCli({"stats"}).code, 2);
  EXPECT_EQ(RunCli({"stats", "--in=/nonexistent.pino"}).code, 1);
}

}  // namespace
}  // namespace cli
}  // namespace pinocchio
