#include "core/expected_influence_solver.h"

#include <gtest/gtest.h>

#include "prob/influence.h"
#include "testing/instance_helpers.h"

namespace pinocchio {
namespace {

using testing_helpers::DefaultConfig;
using testing_helpers::InstanceOptions;
using testing_helpers::RandomInstance;

TEST(ExpectedInfluenceTest, NaiveScoresMatchDefinition) {
  const ProblemInstance instance = RandomInstance(1201);
  const SolverConfig config = DefaultConfig();
  const ExpectedInfluenceResult result =
      SolveExpectedInfluenceNaive(instance, config);
  for (size_t j = 0; j < instance.candidates.size(); ++j) {
    double expected = 0.0;
    for (const MovingObject& o : instance.objects) {
      expected += CumulativeInfluenceProbability(
          *config.pf, instance.candidates[j], o.positions);
    }
    EXPECT_NEAR(result.score[j], expected, 1e-12);
  }
}

TEST(ExpectedInfluenceTest, BranchAndBoundFindsOptimum) {
  for (uint64_t seed : {1202u, 1203u, 1204u}) {
    const ProblemInstance instance = RandomInstance(seed);
    const SolverConfig config = DefaultConfig();
    const ExpectedInfluenceResult naive =
        SolveExpectedInfluenceNaive(instance, config);
    const ExpectedInfluenceResult fast =
        SolveExpectedInfluence(instance, config);
    EXPECT_NEAR(fast.best_score, naive.best_score, 1e-9) << seed;
    EXPECT_NEAR(naive.score[fast.best_candidate], naive.best_score, 1e-9)
        << seed;
  }
}

TEST(ExpectedInfluenceTest, RefinedScoresAreExact) {
  const ProblemInstance instance = RandomInstance(1205);
  const SolverConfig config = DefaultConfig();
  const ExpectedInfluenceResult naive =
      SolveExpectedInfluenceNaive(instance, config);
  const ExpectedInfluenceResult fast =
      SolveExpectedInfluence(instance, config);
  for (size_t j = 0; j < instance.candidates.size(); ++j) {
    if (fast.score_exact[j]) {
      EXPECT_NEAR(fast.score[j], naive.score[j], 1e-12);
    } else {
      // Unrefined entries carry an upper bound.
      EXPECT_GE(fast.score[j] + 1e-9, naive.score[j]);
    }
  }
}

TEST(ExpectedInfluenceTest, BoundsSkipWorkOnSpreadData) {
  InstanceOptions opts;
  opts.num_candidates = 120;
  opts.roamer_fraction = 0.0;
  const ProblemInstance instance = RandomInstance(1206, opts);
  const ExpectedInfluenceResult fast =
      SolveExpectedInfluence(instance, DefaultConfig());
  EXPECT_LT(fast.candidates_refined,
            static_cast<int64_t>(instance.candidates.size()));
}

TEST(ExpectedInfluenceTest, ScoreBoundedByObjectCount) {
  const ProblemInstance instance = RandomInstance(1207);
  const ExpectedInfluenceResult result =
      SolveExpectedInfluence(instance, DefaultConfig());
  EXPECT_GE(result.best_score, 0.0);
  EXPECT_LE(result.best_score,
            static_cast<double>(instance.objects.size()) + 1e-9);
}

TEST(ExpectedInfluenceTest, EmptyInstance) {
  ProblemInstance instance;
  const ExpectedInfluenceResult result =
      SolveExpectedInfluence(instance, DefaultConfig());
  EXPECT_TRUE(result.score.empty());
  EXPECT_DOUBLE_EQ(result.best_score, 0.0);
}

TEST(ExpectedInfluenceTest, ExpectationAgreesWithThresholdOnObviousWinner) {
  // One candidate sits inside the only crowd: both objectives pick it.
  ProblemInstance instance;
  Rng rng(9);
  for (uint32_t k = 0; k < 30; ++k) {
    MovingObject o;
    o.id = k;
    for (int i = 0; i < 10; ++i) {
      o.positions.push_back({rng.Gaussian(0, 300), rng.Gaussian(0, 300)});
    }
    instance.objects.push_back(std::move(o));
  }
  instance.candidates = {{0, 0}, {60000, 60000}};
  const ExpectedInfluenceResult result =
      SolveExpectedInfluence(instance, DefaultConfig());
  EXPECT_EQ(result.best_candidate, 0u);
}

}  // namespace
}  // namespace pinocchio
