#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/brnn_star.h"
#include "baselines/range_solver.h"
#include "testing/instance_helpers.h"

namespace pinocchio {
namespace {

using testing_helpers::DefaultConfig;
using testing_helpers::RandomInstance;

// ------------------------------------------------------------------ BRNN*

TEST(BrnnStarTest, EmptyInstance) {
  ProblemInstance instance;
  const SolverResult result = BrnnStarSolver().Solve(instance, DefaultConfig());
  EXPECT_TRUE(result.influence.empty());
}

TEST(BrnnStarTest, EveryObjectVotesExactlyOnce) {
  const ProblemInstance instance = RandomInstance(501);
  const SolverResult result = BrnnStarSolver().Solve(instance, DefaultConfig());
  int64_t total_votes = 0;
  for (int64_t v : result.influence) {
    EXPECT_GE(v, 0);
    total_votes += v;
  }
  EXPECT_EQ(total_votes, static_cast<int64_t>(instance.objects.size()));
}

TEST(BrnnStarTest, MatchesBruteForceNnVoting) {
  const ProblemInstance instance = RandomInstance(502);
  const SolverResult result = BrnnStarSolver().Solve(instance, DefaultConfig());

  std::vector<int64_t> expected(instance.candidates.size(), 0);
  for (const MovingObject& o : instance.objects) {
    std::vector<int64_t> per_candidate(instance.candidates.size(), 0);
    for (const Point& p : o.positions) {
      size_t nn = 0;
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < instance.candidates.size(); ++j) {
        const double d = Distance(p, instance.candidates[j]);
        if (d < best) {
          best = d;
          nn = j;
        }
      }
      ++per_candidate[nn];
    }
    size_t selected = 0;
    for (size_t j = 1; j < per_candidate.size(); ++j) {
      if (per_candidate[j] > per_candidate[selected]) selected = j;
    }
    ++expected[selected];
  }
  EXPECT_EQ(result.influence, expected);
}

TEST(BrnnStarTest, SingleCandidateGetsAllVotes) {
  ProblemInstance instance = RandomInstance(503);
  instance.candidates.resize(1);
  const SolverResult result = BrnnStarSolver().Solve(instance, DefaultConfig());
  EXPECT_EQ(result.influence[0],
            static_cast<int64_t>(instance.objects.size()));
}

TEST(BrnnStarTest, KnnVotingMatchesBruteForce) {
  const ProblemInstance instance = RandomInstance(508);
  const size_t k = 3;
  const SolverResult result =
      BrnnStarSolver(k).Solve(instance, DefaultConfig());

  std::vector<int64_t> expected(instance.candidates.size(), 0);
  for (const MovingObject& o : instance.objects) {
    std::vector<int64_t> per_candidate(instance.candidates.size(), 0);
    for (const Point& p : o.positions) {
      // k nearest candidates by brute force.
      std::vector<std::pair<double, size_t>> dists;
      for (size_t j = 0; j < instance.candidates.size(); ++j) {
        dists.emplace_back(Distance(p, instance.candidates[j]), j);
      }
      std::sort(dists.begin(), dists.end());
      for (size_t i = 0; i < std::min(k, dists.size()); ++i) {
        ++per_candidate[dists[i].second];
      }
    }
    size_t selected = 0;
    for (size_t j = 1; j < per_candidate.size(); ++j) {
      if (per_candidate[j] > per_candidate[selected]) selected = j;
    }
    ++expected[selected];
  }
  EXPECT_EQ(result.influence, expected);
}

TEST(BrnnStarTest, KOneIsDefaultSemantics) {
  const ProblemInstance instance = RandomInstance(509);
  const SolverConfig config = DefaultConfig();
  EXPECT_EQ(BrnnStarSolver(1).Solve(instance, config).influence,
            BrnnStarSolver().Solve(instance, config).influence);
}

TEST(BrnnStarTest, NameEncodesK) {
  EXPECT_EQ(BrnnStarSolver().Name(), "BRNN*");
  EXPECT_EQ(BrnnStarSolver(4).Name(), "BR4NN*");
}

TEST(BrnnStarDeathTest, RejectsZeroK) {
  EXPECT_DEATH({ BrnnStarSolver solver(0); }, "Check failed");
}

// ------------------------------------------------------------------ RANGE

TEST(RangeSolverTest, MatchesBruteForceSemantics) {
  const ProblemInstance instance = RandomInstance(504);
  const double range = 1500.0;
  const double proportion = 0.5;
  const SolverResult result =
      RangeSolver(proportion, range).Solve(instance, DefaultConfig());

  std::vector<int64_t> expected(instance.candidates.size(), 0);
  for (const MovingObject& o : instance.objects) {
    for (size_t j = 0; j < instance.candidates.size(); ++j) {
      size_t in_range = 0;
      for (const Point& p : o.positions) {
        if (Distance(p, instance.candidates[j]) <= range) ++in_range;
      }
      if (static_cast<double>(in_range) >=
          proportion * static_cast<double>(o.positions.size())) {
        ++expected[j];
      }
    }
  }
  EXPECT_EQ(result.influence, expected);
}

TEST(RangeSolverTest, LargerRangeNeverDecreasesInfluence) {
  const ProblemInstance instance = RandomInstance(505);
  const SolverConfig config = DefaultConfig();
  const SolverResult narrow = RangeSolver(0.5, 500.0).Solve(instance, config);
  const SolverResult wide = RangeSolver(0.5, 5000.0).Solve(instance, config);
  for (size_t j = 0; j < instance.candidates.size(); ++j) {
    EXPECT_GE(wide.influence[j], narrow.influence[j]);
  }
}

TEST(RangeSolverTest, HigherProportionNeverIncreasesInfluence) {
  const ProblemInstance instance = RandomInstance(506);
  const SolverConfig config = DefaultConfig();
  const SolverResult loose = RangeSolver(0.25, 2000.0).Solve(instance, config);
  const SolverResult strict = RangeSolver(0.75, 2000.0).Solve(instance, config);
  for (size_t j = 0; j < instance.candidates.size(); ++j) {
    EXPECT_LE(strict.influence[j], loose.influence[j]);
  }
}

TEST(RangeSolverTest, DefaultRangeIsFivePerMilleOfScale) {
  const ProblemInstance instance = RandomInstance(507);
  Mbr extent;
  for (const MovingObject& o : instance.objects) extent.Expand(o.ActivityMbr());
  for (const Point& c : instance.candidates) extent.Expand(c);
  EXPECT_NEAR(RangeSolver::DefaultRangeMeters(instance),
              0.005 * std::max(extent.width(), extent.height()), 1e-9);
}

TEST(RangeSolverTest, NameEncodesParameters) {
  const RangeSolver solver(0.25, 200.0);
  const std::string name = solver.Name();
  EXPECT_NE(name.find("0.25"), std::string::npos);
  EXPECT_NE(name.find("200"), std::string::npos);
}

TEST(RangeSolverDeathTest, RejectsBadParameters) {
  EXPECT_DEATH({ RangeSolver solver(0.0, 100.0); }, "Check failed");
  EXPECT_DEATH({ RangeSolver solver(1.5, 100.0); }, "Check failed");
  EXPECT_DEATH({ RangeSolver solver(0.5, 0.0); }, "Check failed");
}

}  // namespace
}  // namespace pinocchio
