#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pinocchio {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

RTree::RTree(size_t max_entries)
    : max_entries_(max_entries),
      min_entries_(std::max<size_t>(2, (max_entries * 2 + 4) / 5)),
      root_(nullptr) {
  PINO_CHECK_GE(max_entries, 4u);
}

RTree::RTree(size_t max_entries, std::unique_ptr<Node> root, size_t size)
    : RTree(max_entries) {
  root_ = std::move(root);
  size_ = size;
}

size_t RTree::Height() const {
  size_t h = 0;
  const Node* node = root_.get();
  while (node != nullptr) {
    ++h;
    node = node->is_leaf ? nullptr : node->children.front().get();
  }
  return h;
}

Mbr RTree::Bounds() const { return root_ ? root_->mbr : Mbr(); }

// --------------------------------------------------------------- insertion

RTree::Node* RTree::ChooseLeaf(Node* node, const Point& point,
                               std::vector<Node*>* path) const {
  while (!node->is_leaf) {
    path->push_back(node);
    // Least-enlargement child; ties broken by smallest area (Guttman CL3/4).
    Node* best = nullptr;
    double best_enlargement = kInf;
    double best_area = kInf;
    for (const auto& child : node->children) {
      Mbr grown = child->mbr;
      grown.Expand(point);
      const double area = child->mbr.Area();
      const double enlargement = grown.Area() - area;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = child.get();
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best;
  }
  path->push_back(node);
  return node;
}

void RTree::RecomputeMbr(Node* node) {
  node->mbr = Mbr();
  if (node->is_leaf) {
    for (const RTreeEntry& e : node->entries) node->mbr.Expand(e.point);
  } else {
    for (const auto& child : node->children) node->mbr.Expand(child->mbr);
  }
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  // Quadratic split (Guttman): pick the pair of items whose combined MBR
  // wastes the most area as seeds, then assign the rest greedily by the
  // difference of enlargement costs.
  auto item_mbr = [&](size_t i) -> Mbr {
    if (node->is_leaf) {
      Mbr m;
      m.Expand(node->entries[i].point);
      return m;
    }
    return node->children[i]->mbr;
  };
  const size_t count = node->Count();
  PINO_CHECK_GT(count, max_entries_);

  // PickSeeds.
  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -kInf;
  for (size_t i = 0; i < count; ++i) {
    const Mbr mi = item_mbr(i);
    for (size_t j = i + 1; j < count; ++j) {
      const Mbr mj = item_mbr(j);
      const double waste = mi.Union(mj).Area() - mi.Area() - mj.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;

  std::vector<char> assigned(count, 0);
  Mbr mbr_a = item_mbr(seed_a);
  Mbr mbr_b = item_mbr(seed_b);
  std::vector<size_t> group_a{seed_a};
  std::vector<size_t> group_b{seed_b};
  assigned[seed_a] = assigned[seed_b] = 1;
  size_t remaining = count - 2;

  while (remaining > 0) {
    // If one group must take all remaining items to reach minimum fill,
    // assign them wholesale.
    if (group_a.size() + remaining == min_entries_) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          group_a.push_back(i);
          mbr_a.Expand(item_mbr(i));
          assigned[i] = 1;
        }
      }
      remaining = 0;
      break;
    }
    if (group_b.size() + remaining == min_entries_) {
      for (size_t i = 0; i < count; ++i) {
        if (!assigned[i]) {
          group_b.push_back(i);
          mbr_b.Expand(item_mbr(i));
          assigned[i] = 1;
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: the item with the greatest preference for one group.
    size_t next = count;
    double best_diff = -kInf;
    double d_a_best = 0.0, d_b_best = 0.0;
    for (size_t i = 0; i < count; ++i) {
      if (assigned[i]) continue;
      const Mbr mi = item_mbr(i);
      const double d_a = mbr_a.Union(mi).Area() - mbr_a.Area();
      const double d_b = mbr_b.Union(mi).Area() - mbr_b.Area();
      const double diff = std::abs(d_a - d_b);
      if (diff > best_diff) {
        best_diff = diff;
        next = i;
        d_a_best = d_a;
        d_b_best = d_b;
      }
    }
    PINO_CHECK_LT(next, count);
    bool to_a;
    if (d_a_best != d_b_best) {
      to_a = d_a_best < d_b_best;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = group_a.size() <= group_b.size();
    }
    if (to_a) {
      group_a.push_back(next);
      mbr_a.Expand(item_mbr(next));
    } else {
      group_b.push_back(next);
      mbr_b.Expand(item_mbr(next));
    }
    assigned[next] = 1;
    --remaining;
  }

  // Materialise the two groups: group A stays in `node`, group B moves to
  // the sibling.
  if (node->is_leaf) {
    std::vector<RTreeEntry> keep;
    keep.reserve(group_a.size());
    for (size_t i : group_a) keep.push_back(node->entries[i]);
    sibling->entries.reserve(group_b.size());
    for (size_t i : group_b) sibling->entries.push_back(node->entries[i]);
    node->entries = std::move(keep);
  } else {
    std::vector<std::unique_ptr<Node>> keep;
    keep.reserve(group_a.size());
    for (size_t i : group_a) keep.push_back(std::move(node->children[i]));
    sibling->children.reserve(group_b.size());
    for (size_t i : group_b)
      sibling->children.push_back(std::move(node->children[i]));
    node->children = std::move(keep);
  }
  node->mbr = mbr_a;
  sibling->mbr = mbr_b;
  return sibling;
}

void RTree::Insert(const Point& point, uint32_t id) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->is_leaf = true;
  }
  std::vector<Node*> path;
  Node* leaf = ChooseLeaf(root_.get(), point, &path);
  leaf->entries.push_back({point, id});
  ++size_;

  // Adjust MBRs bottom-up and split overfull nodes.
  std::unique_ptr<Node> carried_split;  // new sibling produced below
  for (size_t level = path.size(); level-- > 0;) {
    Node* node = path[level];
    node->mbr.Expand(point);
    if (carried_split) {
      node->children.push_back(std::move(carried_split));
      node->mbr.Expand(node->children.back()->mbr);
    }
    if (node->Count() > max_entries_) {
      carried_split = SplitNode(node);
    }
  }
  if (carried_split) {
    // Root was split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->mbr = root_->mbr.Union(carried_split->mbr);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(carried_split));
    root_ = std::move(new_root);
  }
}

// ---------------------------------------------------------------- removal

RTree::Node* RTree::FindLeaf(Node* node, const Point& point, uint32_t id,
                             std::vector<Node*>* path) {
  path->push_back(node);
  if (node->is_leaf) {
    for (const RTreeEntry& e : node->entries) {
      if (e.id == id && e.point == point) return node;
    }
    path->pop_back();
    return nullptr;
  }
  for (const auto& child : node->children) {
    if (child->mbr.Contains(point)) {
      Node* found = FindLeaf(child.get(), point, id, path);
      if (found != nullptr) return found;
    }
  }
  path->pop_back();
  return nullptr;
}

void RTree::CondenseTree(std::vector<Node*>& path,
                         std::vector<RTreeEntry>* orphans) {
  // Walk from the leaf upward: dissolve underfull non-root nodes, collect
  // their entries, and tighten ancestors' MBRs.
  for (size_t level = path.size(); level-- > 1;) {
    Node* node = path[level];
    Node* parent = path[level - 1];
    if (node->Count() < min_entries_) {
      // Collect every entry below `node` (point leaves only, so a simple
      // recursive drain suffices) and unlink it from its parent.
      std::vector<Node*> stack{node};
      while (!stack.empty()) {
        Node* current = stack.back();
        stack.pop_back();
        if (current->is_leaf) {
          orphans->insert(orphans->end(), current->entries.begin(),
                          current->entries.end());
        } else {
          for (auto& child : current->children) stack.push_back(child.get());
        }
      }
      for (size_t i = 0; i < parent->children.size(); ++i) {
        if (parent->children[i].get() == node) {
          parent->children.erase(parent->children.begin() +
                                 static_cast<ptrdiff_t>(i));
          break;
        }
      }
    }
    RecomputeMbr(parent);
  }
  if (!path.empty()) RecomputeMbr(path.front());
}

bool RTree::Remove(const Point& point, uint32_t id) {
  if (!root_) return false;
  std::vector<Node*> path;
  Node* leaf = FindLeaf(root_.get(), point, id, &path);
  if (leaf == nullptr) return false;
  for (size_t i = 0; i < leaf->entries.size(); ++i) {
    if (leaf->entries[i].id == id && leaf->entries[i].point == point) {
      leaf->entries.erase(leaf->entries.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  RecomputeMbr(leaf);
  --size_;

  std::vector<RTreeEntry> orphans;
  CondenseTree(path, &orphans);

  // Shrink the root: an internal root with one child is replaced by it;
  // an empty tree resets to null.
  while (root_ != nullptr && !root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  if (root_ != nullptr && root_->Count() == 0) root_.reset();

  // Reinsert orphaned entries (size_ already counts them; Insert would
  // double-count, so adjust first).
  size_ -= orphans.size();
  for (const RTreeEntry& e : orphans) Insert(e.point, e.id);
  return true;
}

// -------------------------------------------------------------- bulk load

RTree RTree::BulkLoad(std::span<const RTreeEntry> entries,
                      size_t max_entries) {
  PINO_CHECK_GE(max_entries, 4u);
  if (entries.empty()) return RTree(max_entries);

  // Build the leaf level with Sort-Tile-Recursive: sort by x, cut into
  // vertical slices of ~sqrt(n/M) runs, sort each slice by y, pack runs of M.
  std::vector<RTreeEntry> sorted(entries.begin(), entries.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const RTreeEntry& a, const RTreeEntry& b) {
              return a.point.x < b.point.x;
            });
  const size_t n = sorted.size();
  const size_t leaf_count = (n + max_entries - 1) / max_entries;
  const size_t slice_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t slice_size =
      ((leaf_count + slice_count - 1) / slice_count) * max_entries;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t begin = 0; begin < n; begin += slice_size) {
    const size_t end = std::min(n, begin + slice_size);
    std::sort(sorted.begin() + static_cast<ptrdiff_t>(begin),
              sorted.begin() + static_cast<ptrdiff_t>(end),
              [](const RTreeEntry& a, const RTreeEntry& b) {
                return a.point.y < b.point.y;
              });
    for (size_t i = begin; i < end; i += max_entries) {
      auto leaf = std::make_unique<Node>();
      leaf->is_leaf = true;
      const size_t stop = std::min(end, i + max_entries);
      leaf->entries.assign(sorted.begin() + static_cast<ptrdiff_t>(i),
                           sorted.begin() + static_cast<ptrdiff_t>(stop));
      for (const RTreeEntry& e : leaf->entries) leaf->mbr.Expand(e.point);
      level.push_back(std::move(leaf));
    }
  }

  // Pack upper levels the same way on node centres until one root remains.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<Node>& a,
                 const std::unique_ptr<Node>& b) {
                return a->mbr.Center().x < b->mbr.Center().x;
              });
    const size_t m = level.size();
    const size_t parent_count = (m + max_entries - 1) / max_entries;
    const size_t pslices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(parent_count))));
    const size_t pslice_size =
        ((parent_count + pslices - 1) / pslices) * max_entries;
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t begin = 0; begin < m; begin += pslice_size) {
      const size_t end = std::min(m, begin + pslice_size);
      std::sort(level.begin() + static_cast<ptrdiff_t>(begin),
                level.begin() + static_cast<ptrdiff_t>(end),
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  return a->mbr.Center().y < b->mbr.Center().y;
                });
      for (size_t i = begin; i < end; i += max_entries) {
        auto parent = std::make_unique<Node>();
        parent->is_leaf = false;
        const size_t stop = std::min(end, i + max_entries);
        for (size_t j = i; j < stop; ++j) {
          parent->mbr.Expand(level[j]->mbr);
          parent->children.push_back(std::move(level[j]));
        }
        parents.push_back(std::move(parent));
      }
    }
    level = std::move(parents);
  }

  return RTree(max_entries, std::move(level.front()), n);
}

// ---------------------------------------------------------------- queries

std::vector<uint32_t> RTree::QueryRectIds(const Mbr& rect) const {
  std::vector<uint32_t> ids;
  QueryRect(rect, [&](const RTreeEntry& e) { ids.push_back(e.id); });
  return ids;
}

std::vector<uint32_t> RTree::QueryCircleIds(const Point& center,
                                            double radius) const {
  std::vector<uint32_t> ids;
  QueryCircle(center, radius, [&](const RTreeEntry& e) { ids.push_back(e.id); });
  return ids;
}

std::vector<std::pair<uint32_t, double>> RTree::NearestNeighbors(
    const Point& query, size_t k) const {
  std::vector<std::pair<uint32_t, double>> result;
  if (!root_ || k == 0) return result;

  // Best-first search over a min-heap of (distance^2, node-or-entry).
  struct HeapItem {
    double dist_sq;
    const Node* node;       // nullptr when this is an entry
    RTreeEntry entry;
    bool operator>(const HeapItem& other) const {
      return dist_sq > other.dist_sq;
    }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  heap.push({root_->mbr.MinDistSquared(query), root_.get(), {}});

  while (!heap.empty() && result.size() < k) {
    HeapItem item = heap.top();
    heap.pop();
    if (item.node == nullptr) {
      result.emplace_back(item.entry.id, std::sqrt(item.dist_sq));
      continue;
    }
    const Node& node = *item.node;
    if (node.is_leaf) {
      for (const RTreeEntry& e : node.entries) {
        heap.push({SquaredDistance(query, e.point), nullptr, e});
      }
    } else {
      for (const auto& child : node.children) {
        heap.push({child->mbr.MinDistSquared(query), child.get(), {}});
      }
    }
  }
  return result;
}

// -------------------------------------------------------------- invariants

size_t RTree::CheckNode(const Node& node, bool is_root, size_t depth,
                        size_t* leaf_depth) const {
  PINO_CHECK_LE(node.Count(), max_entries_);
  if (!is_root) {
    // Bulk-loaded trees may have one under-filled node per level; accept
    // any non-empty node to cover both construction paths.
    PINO_CHECK_GE(node.Count(), 1u);
  }
  Mbr expected;
  size_t nodes = 1;
  if (node.is_leaf) {
    for (const RTreeEntry& e : node.entries) expected.Expand(e.point);
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else {
      PINO_CHECK_EQ(*leaf_depth, depth);
    }
  } else {
    PINO_CHECK(!node.children.empty());
    for (const auto& child : node.children) {
      expected.Expand(child->mbr);
      nodes += CheckNode(*child, false, depth + 1, leaf_depth);
    }
  }
  PINO_CHECK(expected == node.mbr);
  return nodes;
}

size_t RTree::CheckInvariants() const {
  if (!root_) return 0;
  size_t leaf_depth = 0;
  return CheckNode(*root_, true, 1, &leaf_depth);
}

size_t RTree::NodeCount() const {
  struct Counter {
    static size_t Count(const Node& node) {
      size_t total = 1;
      if (!node.is_leaf) {
        for (const auto& child : node.children) total += Count(*child);
      }
      return total;
    }
  };
  return root_ ? Counter::Count(*root_) : 0;
}

std::vector<RTreeEntry> MakeCandidateEntries(
    std::span<const Point> candidates) {
  std::vector<RTreeEntry> entries;
  entries.reserve(candidates.size());
  for (size_t j = 0; j < candidates.size(); ++j) {
    entries.push_back({candidates[j], static_cast<uint32_t>(j)});
  }
  return entries;
}

RTree BuildCandidateRTree(std::span<const Point> candidates,
                          size_t max_entries) {
  return RTree::BulkLoad(MakeCandidateEntries(candidates), max_entries);
}

}  // namespace pinocchio
