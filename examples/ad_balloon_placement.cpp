// Advertising-balloon placement — the paper's motivating scenario.
//
// A company wants to place an outdoor advertising balloon where it will be
// observed by the most potential customers. Customers are mobile (their
// check-in histories describe where they spend time) and observe a balloon
// from any of their positions with a distance-decaying probability.
//
// This example generates a Singapore-like check-in dataset, selects the
// best of 300 candidate sites with PINOCCHIO-VO, contrasts the choice with
// what a classical nearest-neighbour method would pick, and prints the
// top-5 sites with their expected audiences.
//
// Run:  ./ad_balloon_placement

#include <iostream>
#include <memory>

#include "baselines/brnn_star.h"
#include "core/pinocchio_solver.h"
#include "data/checkin_dataset.h"
#include "eval/report.h"
#include "util/string_utils.h"
#include "prob/power_law.h"

using namespace pinocchio;

int main() {
  // A small Singapore: 500 customers, 1200 venues, ~25k check-ins.
  DatasetSpec spec = DatasetSpec::Foursquare();
  spec.num_users = 500;
  spec.num_venues = 1200;
  spec.target_checkins = 25000;
  spec.seed = 2026;
  std::cout << "Generating " << spec.name << "-like check-in data: "
            << spec.num_users << " customers, " << spec.num_venues
            << " venues...\n";
  const CheckinDataset city = GenerateCheckinDataset(spec);

  // Candidate balloon sites: 300 venue locations sampled uniformly.
  const CandidateSample sites = SampleCandidates(city, 300, /*seed=*/7);
  ProblemInstance instance = MakeInstance(city, sites);

  // A customer at distance d km observes the balloon with probability
  // 0.9 * (1 + d)^-1; we call her "reached" if her cumulative observation
  // probability over all her positions is at least 0.7.
  SolverConfig config;
  config.pf = std::make_shared<PowerLawPF>(0.9, 1.0);
  config.tau = 0.7;
  config.top_k = 5;

  // PIN keeps the full influence vector exact, so we can also report the
  // audience of the site a classical method would have chosen.
  const SolverResult best = PinocchioSolver().Solve(instance, config);
  const SolverResult nn = BrnnStarSolver().Solve(instance, config);

  const Projection proj = city.MakeProjection();
  TablePrinter table("Top balloon sites by expected audience",
                     {"rank", "site", "lat", "lon", "customers reached",
                      "audience %"});
  const auto top = best.TopK(5);
  for (size_t i = 0; i < top.size(); ++i) {
    const Point& p = instance.candidates[top[i]];
    const LatLon geo = proj.Unproject(p);
    const double pct = 100.0 * static_cast<double>(best.influence[top[i]]) /
                       static_cast<double>(instance.objects.size());
    table.AddRow({std::to_string(i + 1), "#" + std::to_string(top[i]),
                  FormatDouble(geo.lat, 4), FormatDouble(geo.lon, 4),
                  std::to_string(best.influence[top[i]]),
                  FormatDouble(pct, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nPRIME-LS site:        #" << best.best_candidate
            << " reaching " << best.best_influence << " of "
            << instance.objects.size() << " customers\n";
  std::cout << "Nearest-neighbour pick: #" << nn.best_candidate
            << " (classical BRNN voting)\n";
  if (nn.best_candidate != best.best_candidate) {
    std::cout << "The NN method's site reaches only "
              << best.influence[nn.best_candidate]
              << " customers under the probabilistic model — "
              << "mobility and cumulative influence change the answer.\n";
  }
  std::cout << "\nSolve statistics: " << best.stats.PairsPruned()
            << " object-site pairs pruned, " << best.stats.pairs_validated
            << " validated, in "
            << FormatSeconds(best.stats.elapsed_seconds) << "\n";
  return 0;
}
