// Integration tests: full pipeline from synthetic check-in data through all
// solvers to effectiveness metrics — the same path the benchmark harnesses
// take, at test-friendly scale.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/brnn_star.h"
#include "baselines/range_solver.h"
#include "core/incremental.h"
#include "core/naive_solver.h"
#include "core/pinocchio_solver.h"
#include "core/pinocchio_vo_solver.h"
#include "data/checkin_dataset.h"
#include "eval/metrics.h"
#include "prob/power_law.h"

namespace pinocchio {
namespace {

DatasetSpec TestSpec() {
  DatasetSpec spec;
  spec.name = "integration";
  spec.seed = 4242;
  spec.num_users = 120;
  spec.num_venues = 250;
  spec.target_checkins = 4000;
  spec.min_checkins_per_user = 2;
  spec.max_checkins_per_user = 200;
  return spec;
}

SolverConfig PaperConfig(double tau = 0.7) {
  SolverConfig config;
  // 0.1 km PF unit — the calibration the benchmark harnesses use (see
  // bench/bench_common.h): it reproduces the influenced fractions the
  // paper reports, and keeps influence local instead of saturating across
  // the whole extent.
  config.pf = std::make_shared<PowerLawPF>(0.9, 1.0, /*d0=*/1.0,
                                           /*unit_meters=*/100.0);
  config.tau = tau;
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new CheckinDataset(GenerateCheckinDataset(TestSpec()));
    sample_ = new CandidateSample(SampleCandidates(*dataset_, 60, 17));
    instance_ = new ProblemInstance(MakeInstance(*dataset_, *sample_));
  }
  static void TearDownTestSuite() {
    delete instance_;
    delete sample_;
    delete dataset_;
    instance_ = nullptr;
    sample_ = nullptr;
    dataset_ = nullptr;
  }

  static CheckinDataset* dataset_;
  static CandidateSample* sample_;
  static ProblemInstance* instance_;
};

CheckinDataset* EndToEndTest::dataset_ = nullptr;
CandidateSample* EndToEndTest::sample_ = nullptr;
ProblemInstance* EndToEndTest::instance_ = nullptr;

TEST_F(EndToEndTest, AllPrimeLsSolversAgreeOnCheckinData) {
  const SolverConfig config = PaperConfig();
  const SolverResult naive = NaiveSolver().Solve(*instance_, config);
  const SolverResult pin = PinocchioSolver().Solve(*instance_, config);
  const SolverResult vo = PinocchioVOSolver().Solve(*instance_, config);
  const SolverResult star = PinocchioVOStarSolver().Solve(*instance_, config);

  EXPECT_EQ(pin.influence, naive.influence);
  EXPECT_EQ(vo.best_influence, naive.best_influence);
  EXPECT_EQ(star.best_influence, naive.best_influence);
  EXPECT_EQ(naive.influence[vo.best_candidate], naive.best_influence);
}

TEST_F(EndToEndTest, PruningIsSubstantialOnCheckinShapedData) {
  const SolverResult pin = PinocchioSolver().Solve(*instance_, PaperConfig());
  const auto pairs = static_cast<int64_t>(instance_->objects.size() *
                                          instance_->candidates.size());
  // The paper reports ~2/3 of candidates pruned; require a conservative
  // fraction here to avoid tying the test to generator details.
  EXPECT_GT(pin.stats.PairsPruned(), pairs / 4)
      << "IA=" << pin.stats.pairs_pruned_by_ia
      << " NIB=" << pin.stats.pairs_pruned_by_nib;
}

TEST_F(EndToEndTest, VoDoesLessValidationWorkThanPin) {
  const SolverConfig config = PaperConfig();
  const SolverResult pin = PinocchioSolver().Solve(*instance_, config);
  const SolverResult vo = PinocchioVOSolver().Solve(*instance_, config);
  EXPECT_LE(vo.stats.positions_scanned, pin.stats.positions_scanned);
}

TEST_F(EndToEndTest, PrecisionAgainstGroundTruthBeatsRandomGuessing) {
  SolverConfig config = PaperConfig();
  config.top_k = 20;
  const SolverResult result = PinocchioVOSolver().Solve(*instance_, config);
  const auto relevant = RelevantTopK(sample_->ground_truth, 20);
  const double p20 = PrecisionAtK(result.TopK(20), relevant, 20);
  // Random guessing of 20 of 60 candidates gives E[P@20] = 1/3; the
  // distance-decay ground truth must be recovered far better than that.
  EXPECT_GT(p20, 1.0 / 3.0);
}

TEST_F(EndToEndTest, PrimeLsBeatsOrMatchesBaselinesOnPrecision) {
  SolverConfig config = PaperConfig();
  config.top_k = 20;
  const size_t k = 20;
  const auto relevant = RelevantTopK(sample_->ground_truth, k);

  const SolverResult prime = PinocchioVOSolver().Solve(*instance_, config);
  const SolverResult brnn = BrnnStarSolver().Solve(*instance_, config);
  const double range_default = RangeSolver::DefaultRangeMeters(*instance_);
  const SolverResult range =
      RangeSolver(0.5, range_default).Solve(*instance_, config);

  const double p_prime = PrecisionAtK(prime.TopK(k), relevant, k);
  const double p_brnn = PrecisionAtK(brnn.TopK(k), relevant, k);
  const double p_range = PrecisionAtK(range.TopK(k), relevant, k);
  // The paper reports PRIME-LS ahead of both baselines; allow equality to
  // keep the test robust at small scale.
  EXPECT_GE(p_prime + 1e-12, p_brnn);
  EXPECT_GE(p_prime + 1e-12, p_range);
}

TEST_F(EndToEndTest, IncrementalMatchesBatchOnCheckinData) {
  const SolverConfig config = PaperConfig();
  IncrementalPrimeLS inc(instance_->candidates, config);
  for (const MovingObject& o : instance_->objects) inc.AddObject(o);
  const SolverResult naive = NaiveSolver().Solve(*instance_, config);
  for (size_t j = 0; j < instance_->candidates.size(); ++j) {
    ASSERT_EQ(inc.InfluenceOf(j), naive.influence[j]) << "candidate " << j;
  }
}

TEST_F(EndToEndTest, MaxInfluenceDropsAsTauGrows) {
  int64_t last = std::numeric_limits<int64_t>::max();
  for (double tau : {0.1, 0.5, 0.9}) {
    const SolverResult result =
        PinocchioVOSolver().Solve(*instance_, PaperConfig(tau));
    EXPECT_LE(result.best_influence, last) << "tau=" << tau;
    last = result.best_influence;
  }
}

TEST_F(EndToEndTest, LargerLambdaLowersInfluence) {
  // Steeper decay -> lower probabilities -> fewer influenced objects.
  SolverConfig gentle = PaperConfig();
  gentle.pf = std::make_shared<PowerLawPF>(0.9, 0.75);
  SolverConfig steep = PaperConfig();
  steep.pf = std::make_shared<PowerLawPF>(0.9, 1.25);
  const SolverResult g = PinocchioVOSolver().Solve(*instance_, gentle);
  const SolverResult s = PinocchioVOSolver().Solve(*instance_, steep);
  EXPECT_GE(g.best_influence, s.best_influence);
}

TEST_F(EndToEndTest, SmallerRhoLowersInfluence) {
  SolverConfig strong = PaperConfig();
  strong.pf = std::make_shared<PowerLawPF>(0.9, 1.0);
  SolverConfig weak = PaperConfig();
  weak.pf = std::make_shared<PowerLawPF>(0.5, 1.0);
  const SolverResult hi = PinocchioVOSolver().Solve(*instance_, strong);
  const SolverResult lo = PinocchioVOSolver().Solve(*instance_, weak);
  EXPECT_GE(hi.best_influence, lo.best_influence);
}

}  // namespace
}  // namespace pinocchio
