// Quickstart: the full PINOCCHIO API on a ten-line problem.
//
// Builds the tiny scenario of the paper's Fig. 1 / Example 1 — two moving
// objects, two candidate locations — and shows that cumulative influence
// can prefer a candidate that is *not* the nearest neighbour of any single
// position.
//
// Run:  ./quickstart

#include <iostream>
#include <memory>

#include "core/naive_solver.h"
#include "core/pinocchio_vo_solver.h"
#include "prob/influence.h"
#include "prob/power_law.h"

using namespace pinocchio;

int main() {
  // --- 1. Moving objects: each is just a set of 2-D positions (metres).
  // O1 has one position close to c1 but four positions clustered near c2;
  // O2 has one position at c2 and the rest scattered far away.
  MovingObject o1;
  o1.id = 1;
  o1.positions = {{0, 200},       // p11: near c1
                  {4800, 100},    // p12..p15: clustered around c2
                  {5200, -150},
                  {5100, 250},
                  {4900, -100}};

  MovingObject o2;
  o2.id = 2;
  o2.positions = {{5000, 0},      // p21: exactly at c2
                  {20000, 9000},  // the rest far from both candidates
                  {-14000, 12000},
                  {18000, -11000},
                  {-16000, -9000}};

  ProblemInstance instance;
  instance.objects = {o1, o2};

  // --- 2. Candidate locations.
  const Point c1{0, 0};
  const Point c2{5000, 0};
  instance.candidates = {c1, c2};

  // --- 3. Influence model: the power-law check-in probability of the
  // paper (rho = 0.9, lambda = 1.0, distances in km) and threshold tau.
  SolverConfig config;
  config.pf = std::make_shared<PowerLawPF>(/*rho=*/0.9, /*lambda=*/1.0);
  config.tau = 0.55;

  // --- 4. Inspect cumulative influence probabilities (Definition 1).
  std::cout << "Cumulative influence probabilities (tau = " << config.tau
            << "):\n";
  for (const MovingObject& o : instance.objects) {
    for (size_t j = 0; j < instance.candidates.size(); ++j) {
      const double pr = CumulativeInfluenceProbability(
          *config.pf, instance.candidates[j], o.positions);
      std::cout << "  Pr_c" << j + 1 << "(O" << o.id << ") = " << pr
                << (pr >= config.tau ? "  -> influenced" : "") << "\n";
    }
  }

  // --- 5. Solve PRIME-LS with PINOCCHIO-VO (and verify against NA).
  const SolverResult result = PinocchioVOSolver().Solve(instance, config);
  const SolverResult check = NaiveSolver().Solve(instance, config);

  std::cout << "\nPINOCCHIO-VO selects candidate c" << result.best_candidate + 1
            << " with influence " << result.best_influence << " (NA agrees: "
            << (check.best_influence == result.best_influence ? "yes" : "no")
            << ")\n";
  std::cout << "Note: every single position of O1 except p11 is closer to c2,"
            << "\nbut a nearest-neighbour method would credit O1 to c1 — "
            << "cumulative probability does not.\n";
  return 0;
}
