// Reproduces Fig. 12: effect of the probability threshold tau on PIN-VO
// runtime and on the maximum influence, for Foursquare and Gowalla.
//
// Expected shape (paper): PIN-VO runtime falls then rises as tau grows
// (small tau -> many near-tied candidates weaken Strategy 1; large tau ->
// longer position scans weaken Strategy 2); the maximum influence drops
// monotonically as tau grows.

#include <iostream>

#include "bench_common.h"

namespace pinocchio {
namespace bench {
namespace {

void RunDataset(const std::string& name, const CheckinDataset& dataset,
                const BenchContext& ctx) {
  const size_t m = ScaledCandidates(ctx, kDefaultCandidates);
  const ProblemInstance instance = MakeInstance(dataset, m, ctx.seed);
  TablePrinter table("Fig. 12 (" + name + "): effect of tau",
                     {"tau", "retune", "NA", "PIN-VO", "max influence",
                      "influenced %", "early stops", "heap pops"});
  // One PreparedInstance across the whole tau sweep: each step re-tunes
  // the object store in place (positions and MBRs survive; only the
  // radius memo and IA/NIB regions are recomputed) and keeps the
  // candidate R-tree, so the "retune" column is the true cost of moving
  // tau in a serving process.
  PreparedInstance prepared(instance, DefaultConfig(0.1));
  for (double tau : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    prepared.Reprepare(DefaultConfig(tau));
    const SolverResult na = NaiveSolver().Solve(prepared);
    const SolverResult vo = PinocchioVOSolver().Solve(prepared);
    const double pct = 100.0 * static_cast<double>(vo.best_influence) /
                       static_cast<double>(instance.objects.size());
    table.AddRow({FormatDouble(tau, 1),
                  FormatSeconds(prepared.build_stats().build_seconds),
                  FormatSeconds(na.stats.solve_seconds),
                  FormatSeconds(vo.stats.solve_seconds),
                  std::to_string(vo.best_influence), FormatDouble(pct, 1),
                  std::to_string(vo.stats.early_stops),
                  std::to_string(vo.stats.heap_pops)});
    AppendRunJson("fig12", name, "NA", instance.objects.size(), m, na.stats);
    AppendRunJson("fig12", name, "PIN-VO", instance.objects.size(), m,
                  vo.stats);
  }
  table.Print(std::cout);
}

void Main() {
  const BenchContext ctx = BenchContext::FromEnv();
  ctx.Announce("fig12_effect_tau");
  RunDataset("Foursquare", MakeFoursquare(ctx), ctx);
  RunDataset("Gowalla", MakeGowalla(ctx), ctx);
}

}  // namespace
}  // namespace bench
}  // namespace pinocchio

int main() {
  pinocchio::bench::Main();
  return 0;
}
