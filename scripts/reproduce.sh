#!/usr/bin/env bash
# Full reproduction run: configure, build, test, and regenerate every
# table/figure of the paper plus the ablations.
#
# Usage:
#   scripts/reproduce.sh [scale]
# `scale` is the fraction of the paper's Table-2 dataset sizes (default
# 0.25; use 1.0 for paper-scale, which takes considerably longer).
#
# Outputs:
#   test_output.txt   — full ctest log
#   bench_output.txt  — all benchmark tables

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-0.25}"

echo "== configuring and building =="
cmake -B build -G Ninja
cmake --build build

echo "== running tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

echo "== running benchmarks (PINOCCHIO_BENCH_SCALE=${SCALE}) =="
export PINOCCHIO_BENCH_SCALE="${SCALE}"
: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo "== done: see test_output.txt and bench_output.txt =="
