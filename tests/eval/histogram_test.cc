#include "eval/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace pinocchio {
namespace {

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.StdDev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(SummaryStatsTest, Quantiles) {
  SummaryStats stats;
  for (int i = 0; i <= 100; ++i) stats.Add(i);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 50.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.99), 99.0);
}

TEST(SummaryStatsTest, QuantileInterpolates) {
  SummaryStats stats;
  stats.Add(0.0);
  stats.Add(10.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.75), 7.5);
}

TEST(SummaryStatsTest, AddAfterQuantileStillCorrect) {
  SummaryStats stats;
  stats.Add(3.0);
  stats.Add(1.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 2.0);
  stats.Add(100.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(stats.Median(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 100.0);
}

TEST(SummaryStatsDeathTest, EmptyStatsAbort) {
  SummaryStats stats;
  EXPECT_DEATH(stats.Mean(), "Check failed");
  EXPECT_DEATH(stats.Quantile(0.5), "Check failed");
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);   // bucket 0
  h.Add(1.99);  // bucket 0
  h.Add(2.0);   // bucket 1
  h.Add(9.99);  // bucket 4
  EXPECT_EQ(h.counts(), (std::vector<size_t>{2, 1, 0, 0, 1}));
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 2);
  h.Add(-100.0);
  h.Add(10.0);  // hi is exclusive -> clamps into the last bucket
  h.Add(1e9);
  EXPECT_EQ(h.counts(), (std::vector<size_t>{1, 2}));
}

TEST(HistogramTest, BucketRanges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.BucketRange(0), std::make_pair(0.0, 2.0));
  EXPECT_EQ(h.BucketRange(4), std::make_pair(8.0, 10.0));
}

TEST(HistogramTest, RenderContainsCountsAndBars) {
  Histogram h(0.0, 4.0, 2);
  for (int i = 0; i < 8; ++i) h.Add(1.0);
  h.Add(3.0);
  const std::string text = h.Render(8);
  EXPECT_NE(text.find("########"), std::string::npos);  // full bucket
  EXPECT_NE(text.find(" 8"), std::string::npos);
  EXPECT_NE(text.find(" 1"), std::string::npos);
}

TEST(HistogramTest, UniformDataFillsEvenly) {
  Rng rng(17);
  Histogram h(0.0, 1.0, 10);
  const int n = 100000;
  for (int i = 0; i < n; ++i) h.Add(rng.NextDouble());
  for (size_t c : h.counts()) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 400.0);
  }
}

TEST(HistogramDeathTest, InvalidConstruction) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 5), "Check failed");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "Check failed");
}

}  // namespace
}  // namespace pinocchio
