#include "geo/mbr.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pinocchio {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Mbr::Mbr() : min_x_(kInf), min_y_(kInf), max_x_(-kInf), max_y_(-kInf) {}

Mbr::Mbr(double min_x, double min_y, double max_x, double max_y)
    : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {
  PINO_CHECK_LE(min_x, max_x);
  PINO_CHECK_LE(min_y, max_y);
}

Mbr Mbr::Of(std::span<const Point> points) {
  Mbr mbr;
  for (const Point& p : points) mbr.Expand(p);
  return mbr;
}

bool Mbr::IsEmpty() const { return min_x_ > max_x_; }

Point Mbr::Center() const {
  return {0.5 * (min_x_ + max_x_), 0.5 * (min_y_ + max_y_)};
}

double Mbr::HalfDiagonal() const {
  if (IsEmpty()) return 0.0;
  const double w = width();
  const double h = height();
  return 0.5 * std::sqrt(w * w + h * h);
}

void Mbr::Expand(const Point& p) {
  min_x_ = std::min(min_x_, p.x);
  min_y_ = std::min(min_y_, p.y);
  max_x_ = std::max(max_x_, p.x);
  max_y_ = std::max(max_y_, p.y);
}

void Mbr::Expand(const Mbr& other) {
  if (other.IsEmpty()) return;
  min_x_ = std::min(min_x_, other.min_x_);
  min_y_ = std::min(min_y_, other.min_y_);
  max_x_ = std::max(max_x_, other.max_x_);
  max_y_ = std::max(max_y_, other.max_y_);
}

Mbr Mbr::Union(const Mbr& other) const {
  Mbr result = *this;
  result.Expand(other);
  return result;
}

Mbr Mbr::Inflated(double margin) const {
  if (IsEmpty()) return *this;
  Mbr result = *this;
  result.min_x_ -= margin;
  result.min_y_ -= margin;
  result.max_x_ += margin;
  result.max_y_ += margin;
  PINO_CHECK_LE(result.min_x_, result.max_x_);
  return result;
}

bool Mbr::Contains(const Point& p) const {
  return p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ && p.y <= max_y_;
}

bool Mbr::Contains(const Mbr& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return other.min_x_ >= min_x_ && other.max_x_ <= max_x_ &&
         other.min_y_ >= min_y_ && other.max_y_ <= max_y_;
}

bool Mbr::Intersects(const Mbr& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return min_x_ <= other.max_x_ && other.min_x_ <= max_x_ &&
         min_y_ <= other.max_y_ && other.min_y_ <= max_y_;
}

double Mbr::IntersectionArea(const Mbr& other) const {
  if (!Intersects(other)) return 0.0;
  const double w =
      std::min(max_x_, other.max_x_) - std::max(min_x_, other.min_x_);
  const double h =
      std::min(max_y_, other.max_y_) - std::max(min_y_, other.min_y_);
  return w * h;
}

double Mbr::MinDistSquared(const Point& p) const {
  const double dx = std::max({min_x_ - p.x, 0.0, p.x - max_x_});
  const double dy = std::max({min_y_ - p.y, 0.0, p.y - max_y_});
  return dx * dx + dy * dy;
}

double Mbr::MaxDistSquared(const Point& p) const {
  const double dx = std::max(std::abs(p.x - min_x_), std::abs(p.x - max_x_));
  const double dy = std::max(std::abs(p.y - min_y_), std::abs(p.y - max_y_));
  return dx * dx + dy * dy;
}

double Mbr::MinDist(const Point& p) const {
  return std::sqrt(MinDistSquared(p));
}

double Mbr::MinDist(const Mbr& other) const {
  PINO_CHECK(!IsEmpty());
  PINO_CHECK(!other.IsEmpty());
  const double dx =
      std::max({min_x_ - other.max_x_, 0.0, other.min_x_ - max_x_});
  const double dy =
      std::max({min_y_ - other.max_y_, 0.0, other.min_y_ - max_y_});
  return std::sqrt(dx * dx + dy * dy);
}

double Mbr::MaxDist(const Point& p) const {
  return std::sqrt(MaxDistSquared(p));
}

bool operator==(const Mbr& a, const Mbr& b) {
  if (a.IsEmpty() && b.IsEmpty()) return true;
  return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
         a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
}

std::ostream& operator<<(std::ostream& os, const Mbr& mbr) {
  if (mbr.IsEmpty()) return os << "Mbr(empty)";
  return os << "Mbr([" << mbr.min_x() << ", " << mbr.max_x() << "] x ["
            << mbr.min_y() << ", " << mbr.max_y() << "])";
}

}  // namespace pinocchio
