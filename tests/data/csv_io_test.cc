#include "data/csv_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "geo/distance.h"

namespace pinocchio {
namespace {

TEST(CsvIoTest, LoadsGroupedByUser) {
  std::istringstream in(
      "# user,lat,lon,venue\n"
      "1,1.30,103.80,0\n"
      "2,1.31,103.81,1\n"
      "1,1.32,103.82,1\n"
      "1,1.33,103.83,2\n");
  const CheckinDataset dataset = LoadCheckinsCsv(in);
  ASSERT_EQ(dataset.objects.size(), 2u);
  EXPECT_EQ(dataset.objects[0].positions.size(), 3u);  // user 1
  EXPECT_EQ(dataset.objects[1].positions.size(), 1u);  // user 2
  ASSERT_EQ(dataset.venue_checkins.size(), 3u);
  EXPECT_EQ(dataset.venue_checkins[0], 1);
  EXPECT_EQ(dataset.venue_checkins[1], 2);
  EXPECT_EQ(dataset.venue_checkins[2], 1);
}

TEST(CsvIoTest, WorksWithoutVenueColumn) {
  std::istringstream in("7,1.30,103.80\n7,1.31,103.81\n");
  const CheckinDataset dataset = LoadCheckinsCsv(in);
  ASSERT_EQ(dataset.objects.size(), 1u);
  EXPECT_EQ(dataset.objects[0].positions.size(), 2u);
  EXPECT_TRUE(dataset.venues.empty());
}

TEST(CsvIoTest, ProjectionPreservesDistances) {
  std::istringstream in(
      "1,1.3000,103.8000\n"
      "1,1.3000,103.9000\n");
  const CheckinDataset dataset = LoadCheckinsCsv(in);
  const auto& positions = dataset.objects[0].positions;
  const double planar = Distance(positions[0], positions[1]);
  const double geo =
      HaversineDistance({1.3, 103.8}, {1.3, 103.9});
  EXPECT_NEAR(planar, geo, geo * 2e-3);
}

TEST(CsvIoTest, EmptyInput) {
  std::istringstream in("");
  const CheckinDataset dataset = LoadCheckinsCsv(in);
  EXPECT_TRUE(dataset.objects.empty());
}

TEST(CsvIoTest, NonStrictSkipsMalformedRows) {
  std::istringstream in(
      "1,1.30,103.80\n"
      "garbage,row\n"
      "2,91.0,103.80\n"  // latitude out of range
      "3,1.31,103.81\n");
  size_t skipped = 0;
  const CheckinDataset dataset =
      LoadCheckinsCsv(in, /*strict=*/false, &skipped);
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(dataset.objects.size(), 2u);
}

TEST(CsvIoDeathTest, StrictAbortsOnMalformedRow) {
  std::istringstream in("1,not_a_number,103.80\n");
  EXPECT_DEATH(LoadCheckinsCsv(in, /*strict=*/true), "malformed");
}

TEST(CsvIoTest, SaveLoadRoundTripPreservesStructure) {
  std::istringstream in(
      "1,1.3000,103.8000\n"
      "1,1.3100,103.8100\n"
      "5,1.3200,103.8200\n");
  const CheckinDataset original = LoadCheckinsCsv(in);

  std::ostringstream out;
  SaveCheckinsCsv(original, out);
  std::istringstream back_in(out.str());
  const CheckinDataset reloaded = LoadCheckinsCsv(back_in);

  ASSERT_EQ(reloaded.objects.size(), original.objects.size());
  for (size_t k = 0; k < original.objects.size(); ++k) {
    ASSERT_EQ(reloaded.objects[k].positions.size(),
              original.objects[k].positions.size());
    for (size_t i = 0; i < original.objects[k].positions.size(); ++i) {
      // Reprojection may move the origin; distances between corresponding
      // points survive to sub-metre accuracy.
      EXPECT_NEAR(
          Distance(reloaded.objects[k].positions[i],
                   reloaded.objects[k].positions[0]),
          Distance(original.objects[k].positions[i],
                   original.objects[k].positions[0]),
          1.0);
    }
  }
}

TEST(CsvIoTest, LoaderRecordsSpecSummaries) {
  std::istringstream in(
      "1,1.30,103.80\n"
      "1,1.31,103.81\n"
      "1,1.32,103.82\n"
      "2,1.30,103.80\n");
  const CheckinDataset dataset = LoadCheckinsCsv(in);
  EXPECT_EQ(dataset.spec.num_users, 2u);
  EXPECT_EQ(dataset.spec.target_checkins, 4u);
  EXPECT_EQ(dataset.spec.min_checkins_per_user, 1u);
  EXPECT_EQ(dataset.spec.max_checkins_per_user, 3u);
}

}  // namespace
}  // namespace pinocchio
