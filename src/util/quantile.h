// Quantiles over latency samples by linear interpolation between closest
// ranks (the "R-7" / NumPy-default definition): for a sorted sample v of
// size n, the q-quantile sits at rank q*(n-1) and interpolates linearly
// between the two neighbouring order statistics. Callers sort once and
// then read as many quantiles as they need — the helper never re-sorts.

#ifndef PINOCCHIO_UTIL_QUANTILE_H_
#define PINOCCHIO_UTIL_QUANTILE_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace pinocchio {

/// The q-quantile (q in [0, 1]) of an ascending-sorted sample, linearly
/// interpolated between closest ranks. Returns 0 for an empty sample.
inline double QuantileOfSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Sorts `sample` ascending so repeated QuantileOfSorted reads are valid.
inline void SortForQuantiles(std::vector<double>& sample) {
  std::sort(sample.begin(), sample.end());
}

}  // namespace pinocchio

#endif  // PINOCCHIO_UTIL_QUANTILE_H_
