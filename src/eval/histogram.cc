#include "eval/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/string_utils.h"

namespace pinocchio {

void SummaryStats::Add(double value) {
  values_.push_back(value);
  sorted_ = false;
  sum_ += value;
  sum_sq_ += value * value;
}

double SummaryStats::Min() const {
  PINO_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double SummaryStats::Max() const {
  PINO_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double SummaryStats::Mean() const {
  PINO_CHECK(!values_.empty());
  return sum_ / static_cast<double>(values_.size());
}

double SummaryStats::StdDev() const {
  PINO_CHECK(!values_.empty());
  const double n = static_cast<double>(values_.size());
  const double mean = sum_ / n;
  return std::sqrt(std::max(0.0, sum_sq_ / n - mean * mean));
}

double SummaryStats::Quantile(double q) const {
  PINO_CHECK(!values_.empty());
  PINO_CHECK_GE(q, 0.0);
  PINO_CHECK_LE(q, 1.0);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double rank = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PINO_CHECK_LT(lo, hi);
  PINO_CHECK_GE(buckets, 1u);
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::Add(double value) {
  auto bucket = static_cast<ptrdiff_t>((value - lo_) / bucket_width_);
  bucket = std::clamp<ptrdiff_t>(bucket, 0,
                                 static_cast<ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bucket)];
  ++total_;
}

std::pair<double, double> Histogram::BucketRange(size_t i) const {
  PINO_CHECK_LT(i, counts_.size());
  return {lo_ + bucket_width_ * static_cast<double>(i),
          lo_ + bucket_width_ * static_cast<double>(i + 1)};
}

std::string Histogram::Render(size_t width) const {
  const size_t peak = counts_.empty()
                          ? 0
                          : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto [lo, hi] = BucketRange(i);
    const size_t bars =
        peak == 0 ? 0 : counts_[i] * width / std::max<size_t>(1, peak);
    os << "  [" << FormatDouble(lo, 1) << ", " << FormatDouble(hi, 1) << ") "
       << std::string(bars, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace pinocchio
