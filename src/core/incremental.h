// Incremental PRIME-LS — the dynamic scenario the paper names as future
// work (Section 7): candidate locations, objects and their positions keep
// changing. This maintains exact influence counts under object insertion
// and removal and candidate insertion and retirement, reusing the IA/NIB
// pruning rules per update instead of re-solving from scratch.

#ifndef PINOCCHIO_CORE_INCREMENTAL_H_
#define PINOCCHIO_CORE_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/moving_object.h"
#include "core/solver.h"
#include "index/rtree.h"
#include "prob/probability_function.h"

namespace pinocchio {

/// Maintains exact inf(c) for a dynamic set of objects and candidates.
///
/// Each live object caches which candidates it currently influences, so
/// removal is a pure counter update. Object insertion runs the IA/NIB
/// pruning rules against the candidate R-tree and validates only the
/// remnant set — the same work PINOCCHIO spends per object, but on demand.
class IncrementalPrimeLS {
 public:
  /// `config.pf` and `config.tau` fix the influence semantics for the
  /// lifetime of the structure (changing tau invalidates every cached
  /// radius, which is exactly a rebuild).
  IncrementalPrimeLS(std::vector<Point> candidates, SolverConfig config);

  /// Inserts `object` (its id must be unused among live objects) and
  /// updates all influence counters. Returns the number of candidates the
  /// object influences.
  size_t AddObject(const MovingObject& object);

  /// Removes a live object by id; returns false if unknown.
  bool RemoveObject(uint32_t object_id);

  /// Replaces a live object's positions (the paper's dynamic scenario also
  /// lets positions change); equivalent to remove + re-add but keeps the
  /// id. Returns false if the object is unknown.
  bool UpdateObject(uint32_t object_id, std::vector<Point> positions);

  /// Adds a candidate location; returns its index. Its influence over all
  /// live objects is computed immediately.
  size_t AddCandidate(const Point& location);

  /// Retires a candidate (its slot stays allocated but it no longer
  /// participates in queries); returns false if already retired or out of
  /// range.
  bool RetireCandidate(size_t candidate_index);

  /// Exact inf(c) of a live candidate (0 for retired slots).
  int64_t InfluenceOf(size_t candidate_index) const;

  /// Current optimum: (candidate index, influence). Nullopt when no live
  /// candidate exists.
  std::optional<std::pair<size_t, int64_t>> Best() const;

  /// Exact top-k live candidates by influence (ties by index).
  std::vector<std::pair<size_t, int64_t>> TopK(size_t k) const;

  size_t NumLiveObjects() const { return objects_.size(); }
  size_t NumLiveCandidates() const { return live_candidates_; }

 private:
  struct LiveObject {
    std::vector<Point> positions;
    double min_max_radius = 0.0;
    Mbr mbr;
    /// Candidate indices this object currently influences.
    std::vector<uint32_t> influenced;
  };

  /// Computes the candidate set influenced by (positions, mbr, radius)
  /// using IA certificates, NIB exclusion and validation of the remnant.
  std::vector<uint32_t> InfluencedCandidates(const std::vector<Point>& positions,
                                             const Mbr& mbr,
                                             double radius) const;

  double RadiusFor(size_t n);

  SolverConfig config_;
  std::vector<Point> candidates_;
  std::vector<bool> active_;
  size_t live_candidates_ = 0;
  std::vector<int64_t> influence_;
  RTree rtree_;
  std::unordered_map<uint32_t, LiveObject> objects_;
  std::unordered_map<size_t, double> radius_by_n_;
};

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_INCREMENTAL_H_
