#!/usr/bin/env python3
"""Gate bench_micro results against a checked-in baseline.

bench_micro appends JSON lines to $PINOCCHIO_BENCH_JSON; the validation
rungs carry google-benchmark-style names ("BM_ValidationSimd/780",
"seconds": ...). This script compares a fresh JSONL against
bench/baselines/bench-baseline.jsonl and fails (exit 1) when

  * a pinned benchmark name present in the baseline is missing from the
    fresh run (a silently-dropped measurement must not pass), or
  * a pinned benchmark's wall time regressed by more than --max-regression
    (default 1.25, i.e. >25% slower than the baseline), or
  * the SIMD filter's speedup over the full-scan scalar reference on the
    n=780 case (machine-independent, taken from the fresh run's own
    "speedup_vs_scalar" field) fell below --min-simd-speedup (default 2.0),
    or
  * with --min-parallel-efficiency set, the morsel engine's parallel
    efficiency (speedup / threads, from the fresh run's own "efficiency"
    field on BM_ParallelScaling/PIN/<--parallel-threads>) fell below the
    floor. The gate self-skips when the fresh run's recorded
    "hardware_concurrency" is below --parallel-threads: a 1-core runner
    cannot demonstrate 4-way scaling and must not fail for it, or
  * with --max-approx-error set, any fresh entry's "observed_error"
    exceeded --max-approx-error times its own "epsilon" (the approximate
    tier's accuracy certificate, machine-independent), or
  * with --min-approx-speedup set, the fresh "speedup_vs_exact" at the
    largest "num_objects" rung and coarsest "epsilon" fell below the
    floor (the approximate tier must actually pay off where it claims
    to).

Only names matching --filter (default "BM_Validation") are pinned; other
lines ride along in the artifact but are not gated. Regenerate the
baseline after an intentional perf change with --write-baseline.

Usage:
  scripts/check_bench_regression.py --fresh bench-kernel.jsonl
  scripts/check_bench_regression.py --fresh bench-kernel.jsonl --write-baseline
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "bench" / \
    "baselines" / "bench-baseline.jsonl"


def load_named_entries(path, name_filter):
    """Returns {name: entry-dict} for JSONL lines with a matching "name"."""
    entries = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                print(f"{path}:{line_number}: unparseable JSON line: {error}",
                      file=sys.stderr)
                sys.exit(2)
            name = entry.get("name")
            if isinstance(name, str) and name.startswith(name_filter):
                # Last occurrence wins: reruns append to the same file.
                entries[name] = entry
    return entries


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench_micro JSONL output against the baseline.")
    parser.add_argument("--fresh", required=True,
                        help="JSONL produced by the current bench run")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="checked-in baseline JSONL")
    parser.add_argument("--filter", default="BM_Validation",
                        help="gate only names with this prefix")
    parser.add_argument("--max-regression", type=float, default=1.25,
                        help="fail when fresh/baseline exceeds this ratio")
    parser.add_argument("--min-simd-speedup", type=float, default=2.0,
                        help="required BM_ValidationSimd/780 speedup over "
                             "the scalar reference (0 disables)")
    parser.add_argument("--min-parallel-efficiency", type=float, default=0.0,
                        help="required parallel efficiency (speedup/threads) "
                             "on BM_ParallelScaling/PIN at --parallel-threads "
                             "(0 disables; skipped when the runner has fewer "
                             "cores than --parallel-threads)")
    parser.add_argument("--parallel-threads", type=int, default=4,
                        help="thread rung the efficiency floor applies to")
    parser.add_argument("--max-approx-error", type=float, default=0.0,
                        help="fail when any entry's observed_error exceeds "
                             "this multiple of its own epsilon (0 disables)")
    parser.add_argument("--min-approx-speedup", type=float, default=0.0,
                        help="required speedup_vs_exact at the largest "
                             "num_objects rung and coarsest epsilon "
                             "(0 disables)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the fresh run "
                             "instead of gating")
    args = parser.parse_args()

    fresh = load_named_entries(args.fresh, args.filter)
    if not fresh:
        print(f"no '{args.filter}*' entries in {args.fresh}; "
              "did bench_micro run with PINOCCHIO_BENCH_JSON set?",
              file=sys.stderr)
        return 1

    if args.write_baseline:
        baseline_path = Path(args.baseline)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        with open(baseline_path, "w", encoding="utf-8") as handle:
            for name in sorted(fresh):
                handle.write(json.dumps(fresh[name], sort_keys=True) + "\n")
        print(f"wrote {len(fresh)} entries to {baseline_path}")
        return 0

    baseline = load_named_entries(args.baseline, args.filter)
    if not baseline:
        print(f"no '{args.filter}*' entries in baseline {args.baseline}",
              file=sys.stderr)
        return 1

    failures = []
    for name in sorted(baseline):
        base_seconds = baseline[name].get("seconds")
        if not isinstance(base_seconds, (int, float)) or base_seconds <= 0:
            continue
        entry = fresh.get(name)
        if entry is None:
            failures.append(f"{name}: present in baseline but missing from "
                            "the fresh run")
            continue
        fresh_seconds = entry.get("seconds")
        if not isinstance(fresh_seconds, (int, float)) or fresh_seconds <= 0:
            failures.append(f"{name}: fresh entry has no usable 'seconds'")
            continue
        ratio = fresh_seconds / base_seconds
        verdict = "FAIL" if ratio > args.max_regression else "ok"
        print(f"  {name}: baseline {base_seconds:.6g}s fresh "
              f"{fresh_seconds:.6g}s ratio {ratio:.2f} [{verdict}]")
        if ratio > args.max_regression:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"(limit {args.max_regression:.2f}x)")

    if args.min_simd_speedup > 0:
        simd = fresh.get("BM_ValidationSimd/780")
        if simd is None:
            failures.append("BM_ValidationSimd/780 missing from the fresh "
                            "run; cannot verify the SIMD speedup floor")
        else:
            speedup = simd.get("speedup_vs_scalar")
            if not isinstance(speedup, (int, float)):
                failures.append("BM_ValidationSimd/780 carries no "
                                "'speedup_vs_scalar' field")
            else:
                tier = simd.get("tier", "?")
                verdict = "ok" if speedup >= args.min_simd_speedup else "FAIL"
                print(f"  BM_ValidationSimd/780: {speedup:.1f}x over the "
                      f"scalar reference (tier {tier}) [{verdict}]")
                if speedup < args.min_simd_speedup:
                    failures.append(
                        f"BM_ValidationSimd/780 speedup {speedup:.2f}x below "
                        f"the {args.min_simd_speedup:.2f}x floor")

    if args.min_parallel_efficiency > 0:
        name = f"BM_ParallelScaling/PIN/{args.parallel_threads}"
        entry = fresh.get(name)
        if entry is None:
            failures.append(f"{name} missing from the fresh run; cannot "
                            "verify the parallel efficiency floor")
        else:
            hardware = entry.get("hardware_concurrency")
            efficiency = entry.get("efficiency")
            if isinstance(hardware, (int, float)) and \
                    hardware < args.parallel_threads:
                print(f"  {name}: runner has {hardware:.0f} cores < "
                      f"{args.parallel_threads} threads; efficiency gate "
                      "skipped")
            elif not isinstance(efficiency, (int, float)):
                failures.append(f"{name} carries no 'efficiency' field")
            else:
                verdict = "ok" if efficiency >= args.min_parallel_efficiency \
                    else "FAIL"
                print(f"  {name}: parallel efficiency {efficiency:.2f} "
                      f"(floor {args.min_parallel_efficiency:.2f}) "
                      f"[{verdict}]")
                if efficiency < args.min_parallel_efficiency:
                    failures.append(
                        f"{name} efficiency {efficiency:.2f} below the "
                        f"{args.min_parallel_efficiency:.2f} floor")

    if args.max_approx_error > 0:
        gated = 0
        for name in sorted(fresh):
            entry = fresh[name]
            error = entry.get("observed_error")
            epsilon = entry.get("epsilon")
            if not isinstance(error, (int, float)) or \
                    not isinstance(epsilon, (int, float)) or epsilon <= 0:
                continue
            gated += 1
            limit = args.max_approx_error * epsilon
            verdict = "FAIL" if error > limit else "ok"
            print(f"  {name}: observed error {error:.4f} "
                  f"(certified eps {epsilon:g}) [{verdict}]")
            if error > limit:
                failures.append(
                    f"{name}: observed error {error:.4f} exceeds "
                    f"{args.max_approx_error:g} * eps = {limit:.4f}")
        if gated == 0:
            failures.append("--max-approx-error set but no fresh entry "
                            "carries observed_error/epsilon fields")

    if args.min_approx_speedup > 0:
        frontier = None
        for entry in fresh.values():
            objects = entry.get("num_objects")
            epsilon = entry.get("epsilon")
            speedup = entry.get("speedup_vs_exact")
            if not isinstance(objects, (int, float)) or \
                    not isinstance(epsilon, (int, float)) or \
                    not isinstance(speedup, (int, float)):
                continue
            if frontier is None or \
                    (objects, epsilon) > (frontier["num_objects"],
                                          frontier["epsilon"]):
                frontier = entry
        if frontier is None:
            failures.append("--min-approx-speedup set but no fresh entry "
                            "carries num_objects/epsilon/speedup_vs_exact")
        else:
            speedup = frontier["speedup_vs_exact"]
            verdict = "ok" if speedup >= args.min_approx_speedup else "FAIL"
            print(f"  {frontier['name']}: {speedup:.2f}x over exact PIN-VO "
                  f"(floor {args.min_approx_speedup:g}x) [{verdict}]")
            if speedup < args.min_approx_speedup:
                failures.append(
                    f"{frontier['name']}: speedup {speedup:.2f}x below the "
                    f"{args.min_approx_speedup:g}x floor")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("(after an intentional perf change, regenerate with "
              "--write-baseline)", file=sys.stderr)
        return 1
    print("bench regression gate passed "
          f"({len(baseline)} pinned benchmarks).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
