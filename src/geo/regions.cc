#include "geo/regions.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace pinocchio {
namespace {

// The pruning predicates must agree with the validators' arithmetic, which
// works in *distance* space: d = sqrt(fl(dx^2 + dy^2)) compared against the
// minMaxRadius (itself the largest representable distance whose computed
// cumulative probability clears tau). Comparing squared quantities instead
// (fl(dx^2+dy^2) vs fl(r*r)) is NOT equivalent at the rim: sqrt can round a
// squared sum strictly above fl(r*r) back down to exactly r, so a
// squared-space exclusion would prune a candidate the validators accept.
//
// The bounding boxes seeding range queries are only filters (false positives
// are resolved by Contains), but false *negatives* silently prune, so they
// are widened outward by a few ulps to dominate the rounding error of the
// distance computation.
constexpr int kBoxSlackUlps = 4;

double NudgeDown(double v) {
  for (int i = 0; i < kBoxSlackUlps; ++i) {
    v = std::nextafter(v, -std::numeric_limits<double>::infinity());
  }
  return v;
}

double NudgeUp(double v) {
  for (int i = 0; i < kBoxSlackUlps; ++i) {
    v = std::nextafter(v, std::numeric_limits<double>::infinity());
  }
  return v;
}

}  // namespace

InfluenceArcsRegion::InfluenceArcsRegion(const Mbr& mbr, double radius)
    : mbr_(mbr), radius_(radius) {
  PINO_CHECK(!mbr.IsEmpty());
  // A negative radius is the "uninfluenceable" sentinel of
  // ProbabilityFunction::MinMaxRadius: nothing can be certified.
  // Otherwise the intersection of the four corner disks is non-empty iff
  // the MBR centre (the point minimising the max corner distance)
  // qualifies.
  empty_ = radius < 0.0 || mbr.HalfDiagonal() > radius;
  if (!empty_) {
    // x must be within `radius` of both the left corners (x >= max_x - r is
    // imposed by the right corners and vice versa); likewise for y. This box
    // is conservative: the disk intersection is inscribed in it.
    const double min_x = mbr.max_x() - radius;
    const double max_x = mbr.min_x() + radius;
    const double min_y = mbr.max_y() - radius;
    const double max_y = mbr.min_y() + radius;
    bbox_ = Mbr(min_x, min_y, max_x, max_y);
  }
}

bool InfluenceArcsRegion::Contains(const Point& p) const {
  if (empty_) return false;
  // Distance space, not squared space: a candidate exactly on an arc rim
  // has sqrt(maxDistSquared) == radius while maxDistSquared may exceed
  // fl(radius*radius); the validators certify it, so must we.
  return std::sqrt(mbr_.MaxDistSquared(p)) <= radius_;
}

double InfluenceArcsRegion::Area() const {
  if (empty_) return 0.0;
  // Integrate the vertical extent of the four-disk intersection over x.
  // For each x, y is bounded above by the disks centred at the *bottom*
  // corners (y <= c.y + sqrt(r^2 - (x-c.x)^2)) and below by the disks at the
  // *top* corners. Taking min/max over all four corners is equivalent and
  // branch-free.
  const std::array<Point, 4> corners = {
      Point{mbr_.min_x(), mbr_.min_y()}, Point{mbr_.min_x(), mbr_.max_y()},
      Point{mbr_.max_x(), mbr_.min_y()}, Point{mbr_.max_x(), mbr_.max_y()}};
  const double r2 = radius_ * radius_;
  const double x_lo = bbox_.min_x();
  const double x_hi = bbox_.max_x();
  const auto extent = [&](double x) {
    double y_hi = std::numeric_limits<double>::infinity();
    double y_lo = -std::numeric_limits<double>::infinity();
    for (const Point& c : corners) {
      const double dx = x - c.x;
      const double disc = r2 - dx * dx;
      if (disc < 0.0) return 0.0;  // outside some disk entirely
      const double half = std::sqrt(disc);
      y_hi = std::min(y_hi, c.y + half);
      y_lo = std::max(y_lo, c.y - half);
    }
    return std::max(0.0, y_hi - y_lo);
  };
  // Composite Simpson's rule. The integrand is continuous with bounded
  // variation; 1<<14 panels give ~1e-7 relative error at city scales.
  constexpr int kPanels = 1 << 14;
  const double h = (x_hi - x_lo) / kPanels;
  if (h <= 0.0) return 0.0;
  double sum = extent(x_lo) + extent(x_hi);
  for (int i = 1; i < kPanels; ++i) {
    sum += extent(x_lo + i * h) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

NonInfluenceBoundary::NonInfluenceBoundary(const Mbr& mbr, double radius)
    : mbr_(mbr), radius_(radius) {
  PINO_CHECK(!mbr.IsEmpty());
  // A negative radius is the "uninfluenceable" sentinel: the object cannot
  // be influenced from anywhere, so the boundary encloses nothing and
  // every candidate is pruned.
  //
  // The box seeds range queries whose misses are pruned WITHOUT a Contains
  // check, so it must be a superset of {p : Contains(p)} under rounding:
  // widen each side by a few ulps to cover the error of fl(min/max +- r)
  // versus the sqrt-based membership predicate.
  if (radius >= 0.0) {
    const Mbr inflated = mbr.Inflated(radius);
    bbox_ = Mbr(NudgeDown(inflated.min_x()), NudgeDown(inflated.min_y()),
                NudgeUp(inflated.max_x()), NudgeUp(inflated.max_y()));
  }
}

bool NonInfluenceBoundary::Contains(const Point& p) const {
  if (radius_ < 0.0) return false;
  // Distance space, not squared space: minDistSquared can land strictly
  // above fl(radius*radius) while its sqrt still rounds to exactly radius —
  // a distance at which the object IS influenced (minMaxRadius is the
  // largest such representable distance). Excluding in squared space would
  // prune that candidate unsoundly (Lemma 3 violation).
  return std::sqrt(mbr_.MinDistSquared(p)) <= radius_;
}

double NonInfluenceBoundary::Area() const {
  if (radius_ < 0.0) return 0.0;
  const double w = mbr_.width();
  const double h = mbr_.height();
  return w * h + 2.0 * (w + h) * radius_ + M_PI * radius_ * radius_;
}

}  // namespace pinocchio
