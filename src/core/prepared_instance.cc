#include "core/prepared_instance.h"

#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace pinocchio {

ObjectStore PreparedInstance::BuildStore(
    const std::vector<MovingObject>& objects, const SolverConfig& config,
    PreparedBuildStats* stats) {
  PINO_CHECK(config.pf != nullptr);
  Stopwatch watch;
  ObjectStore store(objects, *config.pf, config.tau);
  stats->store_seconds = watch.ElapsedSeconds();
  ++stats->store_builds;
  return store;
}

PreparedInstance::PreparedInstance(const ProblemInstance& instance,
                                   const SolverConfig& config)
    : config_(config),
      store_(BuildStore(instance.objects, config, &build_stats_)),
      entries_(MakeCandidateEntries(instance.candidates)) {
  BuildRTree();
  RefreshStoreStats();
  build_stats_.build_seconds =
      build_stats_.store_seconds + build_stats_.rtree_seconds;
}

PreparedInstance::PreparedInstance(const std::vector<MovingObject>& objects,
                                   const SolverConfig& config)
    : config_(config),
      store_(BuildStore(objects, config, &build_stats_)),
      rtree_(config.rtree_fanout) {
  RefreshStoreStats();
  build_stats_.build_seconds = build_stats_.store_seconds;
}

void PreparedInstance::BuildRTree() {
  Stopwatch watch;
  rtree_ = RTree::BulkLoad(entries_, config_.rtree_fanout);
  build_stats_.rtree_seconds = watch.ElapsedSeconds();
  build_stats_.rtree_height = rtree_.Height();
  build_stats_.rtree_nodes = rtree_.NodeCount();
  ++build_stats_.rtree_builds;
}

void PreparedInstance::RefreshStoreStats() {
  build_stats_.radius_memo_hits = store_.radius_memo_hits();
  build_stats_.radius_memo_entries = store_.radius_by_n().size();
}

void PreparedInstance::Reprepare(const SolverConfig& new_config) {
  PINO_CHECK(new_config.pf != nullptr);
  const bool semantics_changed =
      new_config.pf.get() != config_.pf.get() || new_config.tau != config_.tau;
  const bool fanout_changed = new_config.rtree_fanout != config_.rtree_fanout;
  config_ = new_config;
  double rebuilt_seconds = 0.0;
  if (semantics_changed) {
    Stopwatch watch;
    store_.Retune(*config_.pf, config_.tau);
    build_stats_.store_seconds = watch.ElapsedSeconds();
    ++build_stats_.store_builds;
    RefreshStoreStats();
    rebuilt_seconds += build_stats_.store_seconds;
  }
  if (fanout_changed) {
    BuildRTree();
    rebuilt_seconds += build_stats_.rtree_seconds;
  }
  build_stats_.build_seconds = rebuilt_seconds;
}

}  // namespace pinocchio
