#include "core/prune_pipeline.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/naive_solver.h"
#include "core/prepared_instance.h"
#include "index/grid_index.h"
#include "prob/influence_kernel.h"
#include "testing/instance_helpers.h"

namespace pinocchio {
namespace {

using testing_helpers::DefaultConfig;
using testing_helpers::RandomInstance;

using PairList = std::vector<std::pair<uint32_t, uint32_t>>;  // (cand, rec)

// Brute-force classification over every (candidate, record) pair, straight
// from the region definitions; shared by the per-index-backend cases.
struct BruteForceClassification {
  PairList ia;
  PairList remnant;
  int64_t nib_pruned = 0;
};

BruteForceClassification BruteForceClassify(const ProblemInstance& instance,
                                            const ObjectStore& store) {
  BruteForceClassification want;
  for (uint32_t k = 0; k < store.size(); ++k) {
    const ObjectRecord& rec = store.records()[k];
    for (uint32_t j = 0; j < instance.candidates.size(); ++j) {
      const Point& c = instance.candidates[j];
      if (!rec.nib.Contains(c)) {
        ++want.nib_pruned;
      } else if (!rec.ia.IsEmpty() && rec.ia.Contains(c)) {
        want.ia.emplace_back(j, k);
      } else {
        want.remnant.emplace_back(j, k);
      }
    }
  }
  return want;
}

PairList Sorted(PairList pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(PrunePipelineTest, ClassificationMatchesBruteForceGeometry) {
  const ProblemInstance instance = RandomInstance(91);
  const PreparedInstance prepared(instance, DefaultConfig());
  const ObjectStore& store = prepared.store();
  const size_t m = prepared.num_candidates();
  const auto r = static_cast<uint32_t>(store.size());
  const InfluenceKernel kernel(prepared.pf(), prepared.tau());

  PairList ia_pairs;
  PairList remnant_pairs;
  SolverStats stats;
  ClassifyCandidates(
      prepared.candidate_rtree(), store, kernel, 0, r, m, &stats,
      [&](const RTreeEntry& e, uint32_t k) { ia_pairs.emplace_back(e.id, k); },
      [&](const RTreeEntry& e, uint32_t k) {
        remnant_pairs.emplace_back(e.id, k);
      });

  const BruteForceClassification want = BruteForceClassify(instance, store);
  EXPECT_EQ(Sorted(ia_pairs), Sorted(want.ia));
  EXPECT_EQ(Sorted(remnant_pairs), Sorted(want.remnant));
  EXPECT_EQ(stats.pairs_pruned_by_ia, static_cast<int64_t>(want.ia.size()));
  EXPECT_EQ(stats.pairs_pruned_by_nib, want.nib_pruned);
}

// Mirror of the case above through the GridIndex overload: the grid-backed
// classification must produce the identical pair sets and counters.
TEST(PrunePipelineTest, GridClassificationMatchesBruteForceGeometry) {
  const ProblemInstance instance = RandomInstance(91);
  const PreparedInstance prepared(instance, DefaultConfig());
  const ObjectStore& store = prepared.store();
  const size_t m = prepared.num_candidates();
  const auto r = static_cast<uint32_t>(store.size());
  const InfluenceKernel kernel(prepared.pf(), prepared.tau());
  const GridIndex grid(prepared.candidate_entries(), 64);

  PairList ia_pairs;
  PairList remnant_pairs;
  SolverStats stats;
  ClassifyCandidates(
      grid, store, kernel, 0, r, m, &stats,
      [&](const RTreeEntry& e, uint32_t k) { ia_pairs.emplace_back(e.id, k); },
      [&](const RTreeEntry& e, uint32_t k) {
        remnant_pairs.emplace_back(e.id, k);
      });

  const BruteForceClassification want = BruteForceClassify(instance, store);
  EXPECT_EQ(Sorted(ia_pairs), Sorted(want.ia));
  EXPECT_EQ(Sorted(remnant_pairs), Sorted(want.remnant));
  EXPECT_EQ(stats.pairs_pruned_by_ia, static_cast<int64_t>(want.ia.size()));
  EXPECT_EQ(stats.pairs_pruned_by_nib, want.nib_pruned);
}

TEST(PrunePipelineTest, PruneAndValidateMatchesNaiveSolver) {
  const ProblemInstance instance = RandomInstance(92);
  const SolverConfig config = DefaultConfig();
  const PreparedInstance prepared(instance, config);
  const ObjectStore& store = prepared.store();
  const size_t m = prepared.num_candidates();
  const auto r = static_cast<uint32_t>(store.size());
  const InfluenceKernel kernel(prepared.pf(), prepared.tau());

  std::vector<int64_t> influence(m, 0);
  SolverStats stats;
  PruneAndValidate(prepared.candidate_rtree(), store, kernel, 0, r, influence,
                   &stats);

  const SolverResult naive = NaiveSolver().Solve(instance, config);
  EXPECT_EQ(influence, naive.influence);
  // Every pair is accounted for exactly once: pruned by IA, pruned by NIB,
  // or validated.
  EXPECT_EQ(stats.pairs_pruned_by_ia + stats.pairs_pruned_by_nib +
                stats.pairs_validated,
            static_cast<int64_t>(m) * static_cast<int64_t>(r));
}

TEST(PrunePipelineTest, RTreeAndGridIndexBackendsAgree) {
  const ProblemInstance instance = RandomInstance(93);
  const PreparedInstance prepared(instance, DefaultConfig());
  const ObjectStore& store = prepared.store();
  const size_t m = prepared.num_candidates();
  const auto r = static_cast<uint32_t>(store.size());
  const InfluenceKernel kernel(prepared.pf(), prepared.tau());

  std::vector<int64_t> via_rtree(m, 0);
  SolverStats rtree_stats;
  PruneAndValidate(prepared.candidate_rtree(), store, kernel, 0, r, via_rtree,
                   &rtree_stats);

  const GridIndex grid(prepared.candidate_entries(), 64);
  std::vector<int64_t> via_grid(m, 0);
  SolverStats grid_stats;
  PruneAndValidate(grid, store, kernel, 0, r, via_grid, &grid_stats);

  EXPECT_EQ(via_rtree, via_grid);
  EXPECT_EQ(rtree_stats.pairs_pruned_by_ia, grid_stats.pairs_pruned_by_ia);
  EXPECT_EQ(rtree_stats.pairs_pruned_by_nib, grid_stats.pairs_pruned_by_nib);
  EXPECT_EQ(rtree_stats.pairs_validated, grid_stats.pairs_validated);
}

TEST(PrunePipelineTest, RecordRangePartitionsComposeExactly) {
  const ProblemInstance instance = RandomInstance(94);
  const PreparedInstance prepared(instance, DefaultConfig());
  const ObjectStore& store = prepared.store();
  const size_t m = prepared.num_candidates();
  const auto r = static_cast<uint32_t>(store.size());
  const InfluenceKernel kernel(prepared.pf(), prepared.tau());

  std::vector<int64_t> full(m, 0);
  SolverStats full_stats;
  PruneAndValidate(prepared.candidate_rtree(), store, kernel, 0, r, full,
                   &full_stats);

  // Disjoint record slices merged with plain addition — the contract the
  // parallel solver relies on.
  std::vector<int64_t> merged(m, 0);
  SolverStats merged_stats;
  const uint32_t mid = r / 2;
  for (const auto& [begin, end] :
       std::vector<std::pair<uint32_t, uint32_t>>{{0, mid}, {mid, r}}) {
    std::vector<int64_t> part(m, 0);
    SolverStats part_stats;
    PruneAndValidate(prepared.candidate_rtree(), store, kernel, begin, end,
                     part, &part_stats);
    for (size_t j = 0; j < m; ++j) merged[j] += part[j];
    merged_stats.pairs_pruned_by_ia += part_stats.pairs_pruned_by_ia;
    merged_stats.pairs_pruned_by_nib += part_stats.pairs_pruned_by_nib;
    merged_stats.pairs_validated += part_stats.pairs_validated;
    merged_stats.positions_scanned += part_stats.positions_scanned;
    merged_stats.early_stops += part_stats.early_stops;
  }

  EXPECT_EQ(merged, full);
  EXPECT_EQ(merged_stats.pairs_pruned_by_ia, full_stats.pairs_pruned_by_ia);
  EXPECT_EQ(merged_stats.pairs_pruned_by_nib, full_stats.pairs_pruned_by_nib);
  EXPECT_EQ(merged_stats.pairs_validated, full_stats.pairs_validated);
  EXPECT_EQ(merged_stats.positions_scanned, full_stats.positions_scanned);
  EXPECT_EQ(merged_stats.early_stops, full_stats.early_stops);
}

TEST(PrunePipelineTest, NullStatsIsAccepted) {
  const ProblemInstance instance = RandomInstance(95);
  const PreparedInstance prepared(instance, DefaultConfig());
  const size_t m = prepared.num_candidates();
  const InfluenceKernel kernel(prepared.pf(), prepared.tau());
  std::vector<int64_t> influence(m, 0);
  PruneAndValidate(prepared.candidate_rtree(), prepared.store(), kernel, 0,
                   static_cast<uint32_t>(prepared.store().size()), influence,
                   nullptr);
  const SolverResult naive = NaiveSolver().Solve(instance, DefaultConfig());
  EXPECT_EQ(influence, naive.influence);
}

}  // namespace
}  // namespace pinocchio
