#include "prob/prune_filter_simd.h"

#include <cmath>
#include <limits>

#if defined(PINOCCHIO_SIMD_X86)
#include <emmintrin.h>
#endif

namespace pinocchio {
namespace prune_internal {
namespace {

// Threshold slack in nextafter steps. The sqrt-monotonicity argument needs
// ~2 steps (regions.cc uses 4 for its boxes); the remainder absorbs any
// few-ulp gap between a vector-computed q and the scalar reference q'
// (zero when the operation sequences match, <= 1 ulp under FMA
// contraction). Wider slack only widens the kUndecided band by the same
// few ulps — correctness never depends on it being tight.
constexpr int kSlackSteps = 12;

double StepDown(double v, int steps) {
  for (int i = 0; i < steps; ++i) {
    v = std::nextafter(v, -std::numeric_limits<double>::infinity());
  }
  return v;
}

double StepUp(double v, int steps) {
  for (int i = 0; i < steps; ++i) {
    v = std::nextafter(v, std::numeric_limits<double>::infinity());
  }
  return v;
}

}  // namespace

PruneThresholds MakePruneThresholds(double radius) {
  PruneThresholds t;
  t.accept = -1.0;  // q >= 0 never accepted
  t.reject = std::numeric_limits<double>::infinity();  // q never rejected
  if (!(radius > 0.0) || !std::isfinite(radius)) return t;

  // accept: q <= fl(r*r) - slack  ==>  sqrt(q') < r by more than an ulp,
  // so the correctly rounded fl(sqrt(q')) <= r and the scalar predicate
  // accepts. Demand a normal square so the nextafter steps are genuine
  // relative slack (denormal steps are absolute and the argument breaks).
  const double r_sq = radius * radius;
  if (std::isnormal(r_sq)) t.accept = StepDown(r_sq, kSlackSteps);

  // reject: q > fl(s*s) + slack with s = succ(r)  ==>  sqrt(q') > s by
  // more than an ulp, so fl(sqrt(q')) >= s > r and the scalar predicate
  // rejects. An infinite square leaves the threshold never-firing.
  const double s =
      std::nextafter(radius, std::numeric_limits<double>::infinity());
  const double s_sq = s * s;
  if (std::isnormal(s_sq)) t.reject = StepUp(s_sq, kSlackSteps);
  return t;
}

void ClassifyPortable(const Mbr& mbr, const PruneThresholds& thresholds,
                      bool ia_empty, const Point* points, size_t n,
                      PruneLaneClass* out) {
  for (size_t i = 0; i < n; ++i) {
    const double q_min = mbr.MinDistSquared(points[i]);
    const double q_max = mbr.MaxDistSquared(points[i]);
    const bool ia_in = !ia_empty && q_max <= thresholds.accept;
    const bool ia_out = ia_empty || q_max > thresholds.reject;
    out[i] = CombineLane(q_min <= thresholds.accept, q_min > thresholds.reject,
                         ia_in, ia_out);
  }
}

#if defined(PINOCCHIO_SIMD_X86)

void ClassifySse2(const Mbr& mbr, const PruneThresholds& thresholds,
                  bool ia_empty, const Point* points, size_t n,
                  PruneLaneClass* out) {
  const __m128d min_x = _mm_set1_pd(mbr.min_x());
  const __m128d max_x = _mm_set1_pd(mbr.max_x());
  const __m128d min_y = _mm_set1_pd(mbr.min_y());
  const __m128d max_y = _mm_set1_pd(mbr.max_y());
  const __m128d zero = _mm_setzero_pd();
  const __m128d abs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7fffffffffffffffLL));
  const __m128d accept = _mm_set1_pd(thresholds.accept);
  const __m128d reject = _mm_set1_pd(thresholds.reject);

  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // AoS -> SoA: [x0 y0], [x1 y1] -> [x0 x1], [y0 y1].
    const __m128d p0 = _mm_loadu_pd(&points[i].x);
    const __m128d p1 = _mm_loadu_pd(&points[i + 1].x);
    const __m128d xs = _mm_unpacklo_pd(p0, p1);
    const __m128d ys = _mm_unpackhi_pd(p0, p1);

    // minDistSquared: dx = max({min_x - x, 0, x - max_x}), analogous dy,
    // q = fl(fl(dx*dx) + fl(dy*dy)) — Mbr::MinDistSquared's exact sequence.
    const __m128d dx = _mm_max_pd(_mm_max_pd(_mm_sub_pd(min_x, xs), zero),
                                  _mm_sub_pd(xs, max_x));
    const __m128d dy = _mm_max_pd(_mm_max_pd(_mm_sub_pd(min_y, ys), zero),
                                  _mm_sub_pd(ys, max_y));
    const __m128d q_min =
        _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));

    // maxDistSquared: dx = max(|x - min_x|, |x - max_x|), analogous dy.
    const __m128d ax = _mm_max_pd(_mm_and_pd(_mm_sub_pd(xs, min_x), abs_mask),
                                  _mm_and_pd(_mm_sub_pd(xs, max_x), abs_mask));
    const __m128d ay = _mm_max_pd(_mm_and_pd(_mm_sub_pd(ys, min_y), abs_mask),
                                  _mm_and_pd(_mm_sub_pd(ys, max_y), abs_mask));
    const __m128d q_max =
        _mm_add_pd(_mm_mul_pd(ax, ax), _mm_mul_pd(ay, ay));

    const int nib_in = _mm_movemask_pd(_mm_cmple_pd(q_min, accept));
    const int nib_out = _mm_movemask_pd(_mm_cmpgt_pd(q_min, reject));
    const int ia_in =
        ia_empty ? 0 : _mm_movemask_pd(_mm_cmple_pd(q_max, accept));
    const int ia_out =
        ia_empty ? 0x3 : _mm_movemask_pd(_mm_cmpgt_pd(q_max, reject));
    for (int lane = 0; lane < 2; ++lane) {
      out[i + lane] =
          CombineLane((nib_in >> lane) & 1, (nib_out >> lane) & 1,
                      (ia_in >> lane) & 1, (ia_out >> lane) & 1);
    }
  }
  if (i < n) {
    ClassifyPortable(mbr, thresholds, ia_empty, points + i, n - i, out + i);
  }
}

#endif  // PINOCCHIO_SIMD_X86

}  // namespace prune_internal

void SimdPruneFilter::Classify(const Mbr& mbr, double min_max_radius,
                               bool ia_empty, std::span<const Point> points,
                               PruneLaneClass* out) const {
  const prune_internal::PruneThresholds thresholds =
      prune_internal::MakePruneThresholds(min_max_radius);
  switch (tier_) {
#if defined(PINOCCHIO_HAVE_AVX2)
    case SimdTier::kAvx2:
      prune_internal::ClassifyAvx2(mbr, thresholds, ia_empty, points.data(),
                                   points.size(), out);
      return;
#endif
#if defined(PINOCCHIO_SIMD_X86)
    case SimdTier::kSse2:
      prune_internal::ClassifySse2(mbr, thresholds, ia_empty, points.data(),
                                   points.size(), out);
      return;
#endif
    default:
      prune_internal::ClassifyPortable(mbr, thresholds, ia_empty,
                                       points.data(), points.size(), out);
      return;
  }
}

}  // namespace pinocchio
