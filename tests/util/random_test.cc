#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pinocchio {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-5.0, 17.5);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 17.5);
  }
}

TEST(RngTest, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntUnbiasedModulo) {
  // Frequency of each residue should be near-uniform (chi-squared style
  // loose bound).
  Rng rng(23);
  const int64_t k = 10;
  std::vector<int> counts(k, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.UniformInt(0, k - 1))];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / static_cast<double>(k),
                5.0 * std::sqrt(static_cast<double>(n) / k));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, PowerLawIntStaysInRange) {
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.PowerLawInt(3, 661, 1.5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 661);
  }
}

TEST(RngTest, PowerLawIntIsSkewedTowardsLow) {
  Rng rng(43);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.PowerLawInt(1, 1000, 2.0) <= 10) ++low;
  }
  // With alpha=2 the mass below 10 is ~90%.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(47);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]), n / 4.0, 500.0);
  EXPECT_NEAR(static_cast<double>(counts[2]), 3.0 * n / 4.0, 500.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  const std::vector<int> before = v;
  rng.Shuffle(v);
  EXPECT_NE(v, before);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(61);
  const auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 100u);
  for (size_t idx : sample) EXPECT_LT(idx, 1000u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(67);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(71);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 0).empty());
}

// Property sweep: PowerLawInt's empirical mean decreases with alpha.
class PowerLawAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawAlphaTest, MeanWithinBounds) {
  const double alpha = GetParam();
  Rng rng(static_cast<uint64_t>(alpha * 1000));
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.PowerLawInt(1, 1000, alpha));
  }
  const double mean = sum / n;
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 501.0);  // strictly below the uniform mean
}

INSTANTIATE_TEST_SUITE_P(Alphas, PowerLawAlphaTest,
                         ::testing::Values(1.2, 1.5, 2.0, 2.5, 3.0));

}  // namespace
}  // namespace pinocchio
