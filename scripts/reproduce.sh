#!/usr/bin/env bash
# Full reproduction run: configure, build, test, and regenerate every
# table/figure of the paper plus the ablations.
#
# Usage:
#   scripts/reproduce.sh [scale]
# `scale` is the fraction of the paper's Table-2 dataset sizes (default
# 0.25; use 1.0 for paper-scale, which takes considerably longer).
#
# Environment:
#   BUILD_DIR             — build directory (default: build)
#   JOBS                  — parallel build/test jobs (default: nproc)
#   REPRODUCE_ONLY        — only run figure binaries whose basename matches
#                           this glob (e.g. "bench_fig12*"); default: all
#   REPRODUCE_SKIP_TESTS  — set to 1 to skip the ctest step (CI smoke)
#
# Outputs:
#   test_output.txt   — full ctest log
#   bench_output.txt  — all benchmark tables
#
# Exits nonzero if the build, the tests, or ANY figure binary fails; every
# binary still runs so one failure cannot hide the others.

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-0.25}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
REPRODUCE_ONLY="${REPRODUCE_ONLY:-*}"
REPRODUCE_SKIP_TESTS="${REPRODUCE_SKIP_TESTS:-0}"

echo "== configuring and building (BUILD_DIR=${BUILD_DIR}, JOBS=${JOBS}) =="
generator=()
# Only pick a generator for a fresh build directory; an existing cache
# keeps whatever generator it was configured with.
if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ] \
   && command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi
cmake -B "${BUILD_DIR}" "${generator[@]}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

if [ "${REPRODUCE_SKIP_TESTS}" != "1" ]; then
  echo "== running tests =="
  ctest --test-dir "${BUILD_DIR}" -j "${JOBS}" 2>&1 | tee test_output.txt
else
  echo "== skipping tests (REPRODUCE_SKIP_TESTS=1) =="
fi

echo "== running benchmarks (PINOCCHIO_BENCH_SCALE=${SCALE}) =="
export PINOCCHIO_BENCH_SCALE="${SCALE}"
: > bench_output.txt
failed=()
ran=0
for b in "${BUILD_DIR}"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  # shellcheck disable=SC2254  # intentional globbing of REPRODUCE_ONLY
  case "$(basename "$b")" in
    ${REPRODUCE_ONLY}) ;;
    *) continue ;;
  esac
  ran=$((ran + 1))
  echo "-- $(basename "$b")" | tee -a bench_output.txt
  if ! "$b" 2>&1 | tee -a bench_output.txt; then
    failed+=("$(basename "$b")")
    echo "!! $(basename "$b") FAILED" | tee -a bench_output.txt
  fi
done

if [ "${ran}" -eq 0 ]; then
  echo "== ERROR: no figure binary matched REPRODUCE_ONLY=${REPRODUCE_ONLY} =="
  exit 1
fi
if [ "${#failed[@]}" -gt 0 ]; then
  echo "== FAILED figure binaries: ${failed[*]} =="
  exit 1
fi
echo "== done: ${ran} figure binaries OK; see test_output.txt and bench_output.txt =="
