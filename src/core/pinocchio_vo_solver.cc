#include "core/pinocchio_vo_solver.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/prepared_instance.h"
#include "prob/influence_kernel.h"
#include "util/stopwatch.h"

namespace pinocchio {

namespace vo_internal {

void ValidateBoundOrdered(
    const PreparedInstance& prepared, const InfluenceKernel& kernel,
    std::span<const uint32_t> order,
    FunctionRef<std::span<const uint32_t>(uint32_t)> verification_set,
    size_t top_k, std::vector<int64_t>* min_inf, std::vector<int64_t>* max_inf,
    SolverResult* result) {
  const ObjectStore& store = prepared.store();
  CutoffTracker cutoff(std::min(top_k, order.size()));

  for (uint32_t j : order) {
    // Strategy 1 stop: every remaining candidate has maxInf no larger than
    // this one's, so none can beat the k-th best validated influence.
    if (cutoff.Saturated() && (*max_inf)[j] < cutoff.Value()) break;
    ++result->stats.heap_pops;

    const Point& c = prepared.candidate(j);
    for (uint32_t rec_idx : verification_set(j)) {
      // Strategy 1 mid-validation abort (Algorithm 3 lines 25-26).
      if (cutoff.Saturated() && (*max_inf)[j] < cutoff.Value()) {
        ++result->stats.strategy1_cutoffs;
        break;
      }
      ++result->stats.pairs_validated;

      // Strategy 2: the kernel scans the record's arena span until Lemma 4
      // decides influence.
      const InfluenceDecision decision =
          kernel.Decide(c, store.positions(rec_idx));
      result->stats.positions_scanned += decision.positions_seen;
      if (decision.decided_early) ++result->stats.early_stops;

      if (decision.influenced) {
        ++(*min_inf)[j];
      } else {
        --(*max_inf)[j];
      }
    }
    cutoff.Push((*min_inf)[j]);
  }
}

}  // namespace vo_internal

SolverResult PinocchioVOSolver::Solve(const PreparedInstance& prepared) const {
  const SolverConfig& config = prepared.config();
  PINO_CHECK_GT(config.top_k, 0u);
  Stopwatch watch;
  SolverResult result;
  const size_t m = prepared.num_candidates();
  const ObjectStore& store = prepared.store();
  const auto r = static_cast<int64_t>(store.size());
  result.influence.assign(m, 0);
  result.influence_exact = false;
  if (m == 0) {
    internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
    return result;
  }

  const InfluenceKernel kernel(prepared.pf(), prepared.tau());

  // ---------------------------------------------------------------- prune
  // minInf starts at 0 and counts IA certificates. The verification sets
  // VS(c) — record indices whose NIB contains c but whose IA does not —
  // are kept as one flat CSR layout (vs_data sliced by vs_offsets) instead
  // of m private vectors, so the prune phase performs O(1) allocations
  // however large the candidate set grows. maxInf = minInf + |VS| after
  // the phase (every other object was excluded by its NIB).
  std::vector<int64_t> min_inf(m, 0);
  std::vector<int64_t> max_inf(m, r);
  std::vector<uint32_t> vs_offsets(m + 1, 0);
  std::vector<uint32_t> vs_data;
  // VO* skips pruning: every candidate shares the identity verification
  // set, iterated directly instead of materialising m copies of it.
  std::vector<uint32_t> all_records;

  if (use_pruning_) {
    // Size-then-fill: collect (candidate, record) remnant pairs once, then
    // counting-sort them into the CSR slots. Stability preserves the
    // record order of the per-candidate scans, keeping validation
    // bit-identical to the per-candidate-vector layout it replaces.
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    ClassifyCandidates(
        prepared.candidate_rtree(), store, kernel, 0, static_cast<uint32_t>(r),
        m, &result.stats,
        [&](const RTreeEntry& e, uint32_t) { ++min_inf[e.id]; },
        [&](const RTreeEntry& e, uint32_t k) { pairs.emplace_back(e.id, k); });
    for (const auto& [cand, rec] : pairs) ++vs_offsets[cand + 1];
    for (size_t j = 0; j < m; ++j) vs_offsets[j + 1] += vs_offsets[j];
    vs_data.resize(pairs.size());
    std::vector<uint32_t> cursor(vs_offsets.begin(), vs_offsets.end() - 1);
    for (const auto& [cand, rec] : pairs) vs_data[cursor[cand]++] = rec;
    for (size_t j = 0; j < m; ++j) {
      max_inf[j] = min_inf[j] + (vs_offsets[j + 1] - vs_offsets[j]);
    }
  } else {
    // PINOCCHIO-VO*: no pruning phase; every object must be verified.
    all_records.resize(static_cast<size_t>(r));
    std::iota(all_records.begin(), all_records.end(), 0u);
  }

  const auto verification_set = [&](uint32_t j) -> std::span<const uint32_t> {
    if (!use_pruning_) return all_records;
    return std::span<const uint32_t>(vs_data)
        .subspan(vs_offsets[j], vs_offsets[j + 1] - vs_offsets[j]);
  };

  // ------------------------------------------------------------- validate
  // Max-heap over candidates ordered by maxInf, then minInf (Algorithm 3
  // line 13); realised as a sorted order since bounds of waiting candidates
  // do not change once the prune phase is over. OrderBefore is a strict
  // total order (index tie-break), so plain sort equals the stable sort of
  // the (maxInf, minInf) key over the ascending-index input.
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return vo_internal::OrderBefore(min_inf, max_inf, a, b);
  });

  vo_internal::ValidateBoundOrdered(prepared, kernel, order, verification_set,
                                    config.top_k, &min_inf, &max_inf, &result);

  // minInf is exact for every fully validated candidate and a valid lower
  // bound for the rest; by construction the k best exact values dominate
  // all bounds of eliminated candidates, so sorting by minInf yields an
  // exact top-k prefix.
  result.influence = std::move(min_inf);
  internal::FinalizeResultFromInfluence(&result);
  internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
  return result;
}

}  // namespace pinocchio
