#include "core/solver.h"

#include <algorithm>
#include <numeric>

#include "core/prepared_instance.h"
#include "util/stopwatch.h"

namespace pinocchio {

std::vector<uint32_t> SolverResult::TopK(size_t k) const {
  const size_t count = std::min(k, ranking.size());
  return std::vector<uint32_t>(ranking.begin(),
                               ranking.begin() + static_cast<ptrdiff_t>(count));
}

SolverResult Solver::Solve(const ProblemInstance& instance,
                           const SolverConfig& config) const {
  Stopwatch watch;
  const PreparedInstance prepared(instance, config);
  const double prepare_seconds = watch.ElapsedSeconds();
  SolverResult result = Solve(prepared);
  result.stats.prepare_seconds = prepare_seconds;
  result.stats.elapsed_seconds = prepare_seconds + result.stats.solve_seconds;
  return result;
}

namespace internal {

void FinalizeResultFromInfluence(SolverResult* result) {
  const size_t m = result->influence.size();
  result->ranking.resize(m);
  std::iota(result->ranking.begin(), result->ranking.end(), 0u);
  std::stable_sort(result->ranking.begin(), result->ranking.end(),
                   [&](uint32_t a, uint32_t b) {
                     return result->influence[a] > result->influence[b];
                   });
  if (m > 0) {
    result->best_candidate = result->ranking.front();
    result->best_influence = result->influence[result->best_candidate];
  }
}

void FinishSolveTiming(SolverStats* stats, double solve_seconds) {
  stats->solve_seconds = solve_seconds;
  stats->elapsed_seconds = stats->prepare_seconds + solve_seconds;
}

}  // namespace internal
}  // namespace pinocchio
