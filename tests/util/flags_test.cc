#include "util/flags.h"

#include <gtest/gtest.h>

namespace pinocchio {
namespace {

TEST(FlagParserTest, EqualsSyntax) {
  const FlagParser flags({"--name=value", "--count=5"});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("count", 0), 5);
}

TEST(FlagParserTest, SpaceSyntax) {
  const FlagParser flags({"--name", "value", "--count", "7"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagParserTest, BareBooleanFlag) {
  const FlagParser flags({"--verbose", "--out=x"});
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetString("verbose").has_value());
}

TEST(FlagParserTest, BooleanValues) {
  const FlagParser flags({"--a=true", "--b=false", "--c=1", "--d=0",
                          "--e=yes", "--f=no", "--g=maybe"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", false));
  EXPECT_FALSE(flags.GetBool("f", true));
  EXPECT_TRUE(flags.GetBool("g", true));  // malformed -> default
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagParserTest, ValueSwallowedByNextFlagIsDetectable) {
  // `--out --legacy-name` turns --out into a bare boolean; a caller that
  // expects a value must be able to tell this apart from an absent flag.
  const FlagParser flags({"--out", "--legacy-name"});
  EXPECT_TRUE(flags.Has("out"));
  EXPECT_FALSE(flags.GetString("out").has_value());
  EXPECT_TRUE(flags.IsValueless("out"));
  EXPECT_TRUE(flags.IsValueless("legacy-name"));
  EXPECT_FALSE(flags.IsValueless("missing"));
  // A flag with an actual value is not valueless, under either syntax.
  const FlagParser valued({"--out", "x", "--k=3"});
  EXPECT_FALSE(valued.IsValueless("out"));
  EXPECT_FALSE(valued.IsValueless("k"));
}

TEST(FlagParserTest, InconsistentRedefinitionIsAnError) {
  const FlagParser bare_then_valued({"--x", "--x=1"});
  ASSERT_EQ(bare_then_valued.errors().size(), 1u);
  EXPECT_NE(bare_then_valued.errors()[0].find("--x"), std::string::npos);
  EXPECT_NE(bare_then_valued.errors()[0].find("inconsistently"),
            std::string::npos);

  const FlagParser valued_then_bare({"--x=1", "--x"});
  EXPECT_EQ(valued_then_bare.errors().size(), 1u);
  // Last occurrence still wins for the stored state.
  EXPECT_TRUE(valued_then_bare.IsValueless("x"));
  EXPECT_FALSE(valued_then_bare.GetString("x").has_value());
}

TEST(FlagParserTest, ConsistentDuplicatesAreNotErrors) {
  EXPECT_TRUE(FlagParser({"--x=1", "--x=2"}).errors().empty());
  EXPECT_TRUE(FlagParser({"--v", "--v"}).errors().empty());
  EXPECT_TRUE(FlagParser({"--x=1", "--x", "2"}).errors().empty());
  EXPECT_TRUE(FlagParser({"--a=1", "--b"}).errors().empty());
}

TEST(FlagParserTest, Positional) {
  const FlagParser flags({"input.csv", "--k=3", "more"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(FlagParserTest, DoubleDashStopsFlagParsing) {
  const FlagParser flags({"--a=1", "--", "--b=2"});
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_FALSE(flags.Has("b"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--b=2");
}

TEST(FlagParserTest, TypedDefaultsOnMissingOrMalformed) {
  const FlagParser flags({"--num=abc", "--pi=3.5"});
  EXPECT_EQ(flags.GetInt("num", 42), 42);
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("pi", 0.0), 3.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("num", 2.0), 2.0);
}

TEST(FlagParserTest, EmptyValueViaEquals) {
  const FlagParser flags({"--name="});
  EXPECT_TRUE(flags.Has("name"));
  ASSERT_TRUE(flags.GetString("name").has_value());
  EXPECT_EQ(*flags.GetString("name"), "");
}

TEST(FlagParserTest, LastOccurrenceWins) {
  const FlagParser flags({"--x=1", "--x=2"});
  EXPECT_EQ(flags.GetInt("x", 0), 2);
}

TEST(FlagParserTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--a=1", "pos"};
  const FlagParser flags(3, argv);
  EXPECT_TRUE(flags.Has("a"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(FlagParserTest, UnknownFlags) {
  const FlagParser flags({"--good=1", "--typo=2"});
  const auto unknown = flags.UnknownFlags({"good", "other"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
  EXPECT_TRUE(FlagParser({"--good=1"}).UnknownFlags({"good"}).empty());
}

TEST(FlagParserTest, FlagNamesSorted) {
  const FlagParser flags({"--b=1", "--a=2"});
  const auto names = flags.FlagNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace pinocchio
