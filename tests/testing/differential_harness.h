// Differential fuzzing harness: generates randomized PRIME-LS instances
// (sweeping sizes, all PF families, boundary tau values and degenerate
// geometries), runs every solver plus the streaming/incremental/weighted/
// multi-facility paths, and diffs the results against the NaiveSolver
// oracle. On a mismatch — or a PINOCCHIO_SELF_CHECK violation raised while
// solving — it records a human-readable failure and, when a reproducer
// directory is configured, dumps the instance as a binary dataset snapshot
// (src/data/binary_io) next to a sidecar describing the configuration.
//
// Instances are a pure function of the seed: replaying a failure is
// `fuzz_driver --seed_begin=S --seed_end=S+1`; the dumped snapshot exists
// so a failure archived from CI stays reproducible even if generation
// changes. See docs/ARCHITECTURE.md ("Self-check mode and the fuzz
// harness") for the workflow.

#ifndef PINOCCHIO_TESTS_TESTING_DIFFERENTIAL_HARNESS_H_
#define PINOCCHIO_TESTS_TESTING_DIFFERENTIAL_HARNESS_H_

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/solver.h"

namespace pinocchio {
namespace testing_diff {

/// Thrown (via the self-check violation handler the harness installs for
/// the duration of a case) when PINOCCHIO_SELF_CHECK detects a violated
/// pruning or validation invariant.
struct SelfCheckViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One generated fuzz case. Everything is deterministic in the seed.
struct FuzzCase {
  ProblemInstance instance;
  SolverConfig config;
  /// Name of the PF family drawn for this case (for logs and sidecars).
  std::string pf_name;
  /// True when tau was snapped to (or one ulp around) an exact pair
  /// probability, exercising the >= threshold boundary.
  bool boundary_tau = false;
};

/// Regenerates the instance and configuration for `seed`.
FuzzCase GenerateFuzzCase(uint64_t seed);

struct FuzzOptions {
  /// Directory for reproducer dumps ("" disables dumping). Created on
  /// demand.
  std::string reproducer_dir;
  /// Also exercise the auxiliary paths (weighted, multi-facility,
  /// incremental, streaming, classical baselines). The core ten-solver
  /// differential always runs.
  bool check_auxiliary = true;
  /// Polled between cases; returning true stops the sweep early with the
  /// partial summary (FuzzSummary::interrupted set). The fuzz driver
  /// wires this to ShutdownRequested() so Ctrl-C still reports what ran.
  bool (*should_stop)() = nullptr;
};

struct FuzzCaseResult {
  uint64_t seed = 0;
  /// Human-readable invariant failures; empty means the case passed.
  std::vector<std::string> failures;
  /// Path of the dumped reproducer snapshot (empty if none was written).
  std::string reproducer_path;

  bool ok() const { return failures.empty(); }
};

/// Generates the case for `seed`, runs the full differential check and
/// returns the outcome. Installs a throwing self-check violation handler
/// for the duration of the call (restoring the fatal default afterwards)
/// so that violations surface as failures instead of aborting the sweep;
/// whether self-check verification actually runs is still governed by
/// SelfCheckEnabled().
FuzzCaseResult RunFuzzCase(uint64_t seed, const FuzzOptions& options = {});

struct FuzzSummary {
  uint64_t cases_run = 0;
  /// Results of the failing seeds only.
  std::vector<FuzzCaseResult> failures;
  /// True when options.should_stop ended the sweep before seed_end.
  bool interrupted = false;

  bool ok() const { return failures.empty(); }
};

/// Runs seeds in [seed_begin, seed_end). When `progress` is non-null,
/// failures are reported to it as they happen plus a periodic heartbeat.
FuzzSummary RunFuzzRange(uint64_t seed_begin, uint64_t seed_end,
                         const FuzzOptions& options = {},
                         std::ostream* progress = nullptr);

}  // namespace testing_diff
}  // namespace pinocchio

#endif  // PINOCCHIO_TESTS_TESTING_DIFFERENTIAL_HARNESS_H_
