#include "data/binary_io.h"

#include <cstring>
#include <fstream>
#include <limits>

#include "util/logging.h"

namespace pinocchio {
namespace {

constexpr char kMagic[8] = {'P', 'I', 'N', 'O', 'D', 'A', 'T', 'A'};
constexpr uint32_t kVersion = 1;

// Sanity caps so a corrupted length field cannot trigger a huge
// allocation before the read fails.
constexpr uint64_t kMaxVenues = 1ull << 32;
constexpr uint64_t kMaxObjects = 1ull << 32;
constexpr uint64_t kMaxPositionsPerObject = 1ull << 24;
constexpr uint32_t kMaxNameLength = 1 << 16;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == static_cast<std::streamsize>(sizeof(T));
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

void SaveDatasetBinary(const CheckinDataset& dataset, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);

  const auto name_length = static_cast<uint32_t>(dataset.spec.name.size());
  WritePod(out, name_length);
  out.write(dataset.spec.name.data(), name_length);
  WritePod(out, dataset.spec.origin.lat);
  WritePod(out, dataset.spec.origin.lon);
  WritePod(out, dataset.spec.extent_x_km);
  WritePod(out, dataset.spec.extent_y_km);
  WritePod(out, dataset.spec.seed);

  WritePod(out, static_cast<uint64_t>(dataset.venues.size()));
  for (const Point& v : dataset.venues) {
    WritePod(out, v.x);
    WritePod(out, v.y);
  }
  for (int64_t c : dataset.venue_checkins) WritePod(out, c);

  WritePod(out, static_cast<uint64_t>(dataset.objects.size()));
  for (const MovingObject& o : dataset.objects) {
    WritePod(out, o.id);
    WritePod(out, static_cast<uint64_t>(o.positions.size()));
    for (const Point& p : o.positions) {
      WritePod(out, p.x);
      WritePod(out, p.y);
    }
  }
}

bool LoadDatasetBinary(std::istream& in, CheckinDataset* dataset,
                       std::string* error) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, "bad magic: not a PINODATA snapshot");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) return Fail(error, "truncated header");
  if (version != kVersion) {
    return Fail(error, "unsupported version " + std::to_string(version));
  }

  *dataset = CheckinDataset();
  uint32_t name_length = 0;
  if (!ReadPod(in, &name_length) || name_length > kMaxNameLength) {
    return Fail(error, "bad dataset name length");
  }
  dataset->spec.name.resize(name_length);
  in.read(dataset->spec.name.data(), name_length);
  if (in.gcount() != static_cast<std::streamsize>(name_length)) {
    return Fail(error, "truncated dataset name");
  }
  if (!ReadPod(in, &dataset->spec.origin.lat) ||
      !ReadPod(in, &dataset->spec.origin.lon) ||
      !ReadPod(in, &dataset->spec.extent_x_km) ||
      !ReadPod(in, &dataset->spec.extent_y_km) ||
      !ReadPod(in, &dataset->spec.seed)) {
    return Fail(error, "truncated spec");
  }

  uint64_t venue_count = 0;
  if (!ReadPod(in, &venue_count) || venue_count > kMaxVenues) {
    return Fail(error, "bad venue count");
  }
  dataset->venues.resize(venue_count);
  for (Point& v : dataset->venues) {
    if (!ReadPod(in, &v.x) || !ReadPod(in, &v.y)) {
      return Fail(error, "truncated venue table");
    }
  }
  dataset->venue_checkins.resize(venue_count);
  for (int64_t& c : dataset->venue_checkins) {
    if (!ReadPod(in, &c)) return Fail(error, "truncated venue counts");
    if (c < 0) return Fail(error, "negative venue check-in count");
  }

  uint64_t object_count = 0;
  if (!ReadPod(in, &object_count) || object_count > kMaxObjects) {
    return Fail(error, "bad object count");
  }
  dataset->objects.resize(object_count);
  for (MovingObject& o : dataset->objects) {
    uint64_t position_count = 0;
    if (!ReadPod(in, &o.id) || !ReadPod(in, &position_count) ||
        position_count > kMaxPositionsPerObject) {
      return Fail(error, "bad object header");
    }
    o.positions.resize(position_count);
    for (Point& p : o.positions) {
      if (!ReadPod(in, &p.x) || !ReadPod(in, &p.y)) {
        return Fail(error, "truncated positions");
      }
    }
  }
  dataset->spec.num_users = dataset->objects.size();
  dataset->spec.num_venues = dataset->venues.size();
  dataset->spec.target_checkins = dataset->TotalCheckins();
  return true;
}

void SaveDatasetBinaryFile(const CheckinDataset& dataset,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  PINO_CHECK(out.is_open()) << "cannot create " << path;
  SaveDatasetBinary(dataset, out);
  PINO_CHECK(out.good()) << "write failure on " << path;
}

bool LoadDatasetBinaryFile(const std::string& path, CheckinDataset* dataset,
                           std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return LoadDatasetBinary(in, dataset, error);
}

}  // namespace pinocchio
