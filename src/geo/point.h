// Basic point types.
//
// The library distinguishes two coordinate spaces:
//  * `LatLon` — raw geographic coordinates in degrees, as found in check-in
//    datasets.
//  * `Point`  — planar coordinates in metres in a local tangent plane,
//    produced by `Projection` (see geo/distance.h). All region geometry
//    (MBRs, influence arcs, non-influence boundaries) and the R-tree operate
//    in this metric space, mirroring the paper's use of geographic spherical
//    distance (footnote 5) while keeping the geometry Euclidean.

#ifndef PINOCCHIO_GEO_POINT_H_
#define PINOCCHIO_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace pinocchio {

/// Planar point in metres (local tangent plane).
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  friend constexpr bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) {
    return !(a == b);
  }
  friend constexpr Point operator+(const Point& a, const Point& b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(const Point& a, const Point& b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(const Point& a, double s) {
    return {a.x * s, a.y * s};
  }
};

/// Squared Euclidean distance between planar points.
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between planar points (metres).
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Geographic coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  constexpr LatLon() = default;
  constexpr LatLon(double lat_in, double lon_in) : lat(lat_in), lon(lon_in) {}

  friend constexpr bool operator==(const LatLon& a, const LatLon& b) {
    return a.lat == b.lat && a.lon == b.lon;
  }
};

inline std::ostream& operator<<(std::ostream& os, const LatLon& p) {
  return os << "(" << p.lat << "°, " << p.lon << "°)";
}

}  // namespace pinocchio

#endif  // PINOCCHIO_GEO_POINT_H_
