// PINOCCHIO with convex-hull activity regions — an extension beyond the
// paper. Theorems 1 and 2 only need an upper bound on the farthest and a
// lower bound on the nearest position distance; the convex hull gives
// strictly tighter bounds than the MBR (maxDist never larger, minDist
// never smaller), so the hull-based rules decide at least every pair the
// MBR rules decide. The trade-off is O(h) per containment test instead of
// O(1); the ablation bench quantifies both sides.

#ifndef PINOCCHIO_CORE_PINOCCHIO_HULL_SOLVER_H_
#define PINOCCHIO_CORE_PINOCCHIO_HULL_SOLVER_H_

#include "core/solver.h"

namespace pinocchio {

/// Algorithm 2 with hull-based IA/NIB rules. Exact for every candidate.
class PinocchioHullSolver : public Solver {
 public:
  std::string Name() const override { return "PIN-HULL"; }

  using Solver::Solve;
  SolverResult Solve(const PreparedInstance& prepared) const override;
};

}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_PINOCCHIO_HULL_SOLVER_H_
