#include "util/self_check.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "util/logging.h"

namespace pinocchio {
namespace {

constexpr int kUninitialized = -1;

std::atomic<int> g_enabled{kUninitialized};

std::mutex g_handler_mutex;
SelfCheckViolationHandler& Handler() {
  static SelfCheckViolationHandler handler;
  return handler;
}

int InitialState() {
  if (const char* env = std::getenv("PINOCCHIO_SELF_CHECK")) {
    const std::string value(env);
    const bool off = value == "0" || value == "false" || value == "off" ||
                     value == "no" || value.empty();
    return off ? 0 : 1;
  }
#ifdef PINOCCHIO_SELF_CHECK_DEFAULT_ON
  return 1;
#else
  return 0;
#endif
}

}  // namespace

bool SelfCheckEnabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state == kUninitialized) {
    state = InitialState();
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void SetSelfCheckEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void ReportSelfCheckViolation(const std::string& message) {
  {
    const std::lock_guard<std::mutex> lock(g_handler_mutex);
    if (Handler()) {
      Handler()(message);
      return;
    }
  }
  PINO_LOG(FATAL) << "self-check violation: " << message;
}

void SetSelfCheckViolationHandler(SelfCheckViolationHandler handler) {
  const std::lock_guard<std::mutex> lock(g_handler_mutex);
  Handler() = std::move(handler);
}

}  // namespace pinocchio
