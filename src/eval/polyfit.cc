#include "eval/polyfit.h"

#include <cmath>

#include "util/logging.h"

namespace pinocchio {

std::vector<double> PolyFit(std::span<const double> xs,
                            std::span<const double> ys, size_t degree) {
  PINO_CHECK_EQ(xs.size(), ys.size());
  PINO_CHECK_GE(xs.size(), degree + 1);
  const size_t terms = degree + 1;

  // Normal equations: (V^T V) c = V^T y with the Vandermonde matrix V.
  // Power-sum accumulation keeps it O(n * degree).
  std::vector<double> power_sums(2 * degree + 1, 0.0);  // sum of x^k
  std::vector<double> rhs(terms, 0.0);                  // sum of y * x^k
  for (size_t i = 0; i < xs.size(); ++i) {
    double xp = 1.0;
    for (size_t k = 0; k <= 2 * degree; ++k) {
      power_sums[k] += xp;
      if (k < terms) rhs[k] += ys[i] * xp;
      xp *= xs[i];
    }
  }
  std::vector<std::vector<double>> a(terms, std::vector<double>(terms));
  for (size_t r = 0; r < terms; ++r) {
    for (size_t c = 0; c < terms; ++c) a[r][c] = power_sums[r + c];
  }

  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < terms; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < terms; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    PINO_CHECK_GT(std::abs(a[pivot][col]), 1e-300)
        << "singular normal equations (collinear sample xs?)";
    std::swap(a[col], a[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    for (size_t r = col + 1; r < terms; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (size_t c = col; c < terms; ++c) a[r][c] -= factor * a[col][c];
      rhs[r] -= factor * rhs[col];
    }
  }
  std::vector<double> coefficients(terms, 0.0);
  for (size_t r = terms; r-- > 0;) {
    double value = rhs[r];
    for (size_t c = r + 1; c < terms; ++c) {
      value -= a[r][c] * coefficients[c];
    }
    coefficients[r] = value / a[r][r];
  }
  return coefficients;
}

double PolyEval(std::span<const double> coefficients, double x) {
  double result = 0.0;
  for (size_t k = coefficients.size(); k-- > 0;) {
    result = result * x + coefficients[k];
  }
  return result;
}

}  // namespace pinocchio
