#include "core/prune_pipeline.h"

#include <sstream>
#include <vector>

#include "index/grid_index.h"
#include "prob/influence.h"
#include "prob/influence_kernel.h"
#include "prob/prune_filter_simd.h"
#include "util/self_check.h"

namespace pinocchio {
namespace {

/// Batches below this size run the exact scalar predicates directly: the
/// fixed cost of gathering the batch outweighs the vector savings.
constexpr size_t kMinBatchForPruneFilter = 8;

/// Per-record scratch for the batched filter path, reused across the
/// records of one Classify/PruneAndValidate call.
struct PruneScratch {
  std::vector<RTreeEntry> entries;
  std::vector<Point> points;
  std::vector<PruneLaneClass> classes;
};

/// Exact scalar classification of one candidate (the reference the filter
/// must agree with).
PruneLaneClass ClassifyExact(const ObjectRecord& rec, const Point& p) {
  if (!rec.nib.Contains(p)) return PruneLaneClass::kOutside;
  if (!rec.ia.IsEmpty() && rec.ia.Contains(p)) {
    return PruneLaneClass::kIaCertified;
  }
  return PruneLaneClass::kRemnant;
}

void ReportPruneFilterViolation(const ObjectRecord& rec, const RTreeEntry& e,
                                PruneLaneClass filter_class,
                                PruneLaneClass exact_class) {
  std::ostringstream msg;
  msg.precision(17);
  msg << "prune filter violated its certificate: candidate " << e.id
      << " at (" << e.point.x << ", " << e.point.y << ") classified "
      << static_cast<int>(filter_class) << " but exact predicates say "
      << static_cast<int>(exact_class) << " (minMaxRadius "
      << rec.min_max_radius << ")";
  ReportSelfCheckViolation(msg.str());
}

void ReportClassificationViolation(const char* lemma, const RTreeEntry& entry,
                                   const InfluenceKernel& kernel,
                                   std::span<const Point> positions,
                                   bool influences) {
  std::ostringstream msg;
  msg.precision(17);
  msg << lemma << " violated: candidate " << entry.id << " at ("
      << entry.point.x << ", " << entry.point.y << ") was "
      << (influences ? "classified non-influencing but influences"
                     : "IA-certified but does not influence")
      << " the object (" << positions.size() << " positions, tau="
      << kernel.tau() << ", pf=" << kernel.pf().Name() << ")";
  ReportSelfCheckViolation(msg.str());
}

// The self-check audit: enumerates EVERY candidate of the index and
// re-derives its classification from the scalar reference. Lemma 3 demands
// that candidates outside the NIB never influence the object; Lemma 2 that
// candidates inside the IA always do. Candidates in the remnant ring carry
// no claim — validation decides them (and the kernel audits itself there).
template <typename Index>
void AuditClassification(const Index& index, const InfluenceArcsRegion& ia,
                         const NonInfluenceBoundary& nib,
                         const InfluenceKernel& kernel,
                         std::span<const Point> positions) {
  index.QueryRect(index.Bounds(), [&](const RTreeEntry& e) {
    if (!nib.Contains(e.point)) {
      if (Influences(kernel.pf(), e.point, positions, kernel.tau())) {
        ReportClassificationViolation("Lemma 3 (NIB prune)", e, kernel,
                                      positions, true);
      }
    } else if (!ia.IsEmpty() && ia.Contains(e.point)) {
      if (!Influences(kernel.pf(), e.point, positions, kernel.tau())) {
        ReportClassificationViolation("Lemma 2 (IA certificate)", e, kernel,
                                      positions, false);
      }
    }
  });
}

// The single QueryRect site of the prune phase: one record against every
// candidate of `index`, instantiated for each candidate-index type. With a
// filter (tiers above kScalar) the range-query hits are gathered and
// classified as a SIMD batch; kUndecided lanes — and every lane under
// self-check — are re-derived with the exact region predicates, so the
// dispatched classes (and their visit order) are identical to the scalar
// path on every input.
template <typename Index>
void ClassifyRecord(const Index& index, const ObjectStore& store,
                    const ObjectRecord& rec, uint32_t record_index,
                    size_t num_candidates, SolverStats* stats, bool self_check,
                    const InfluenceKernel& kernel,
                    const SimdPruneFilter* filter, PruneScratch* scratch,
                    const PruneIaFn& ia_certified,
                    const PruneRemnantFn& remnant) {
  if (self_check) {
    AuditClassification(index, rec.ia, rec.nib, kernel, store.positions(rec));
  }
  int64_t inside_nib = 0;
  const auto dispatch = [&](const RTreeEntry& e, PruneLaneClass cls) {
    if (cls == PruneLaneClass::kOutside) return;  // Lemma 3
    ++inside_nib;
    if (cls == PruneLaneClass::kIaCertified) {  // Lemma 2
      if (stats != nullptr) ++stats->pairs_pruned_by_ia;
      ia_certified(e, record_index);
    } else {
      remnant(e, record_index);
    }
  };

  bool batched = false;
  if (filter != nullptr) {
    scratch->entries.clear();
    index.QueryRect(rec.nib.BoundingBox(), [&](const RTreeEntry& e) {
      scratch->entries.push_back(e);
    });
    batched = scratch->entries.size() >= kMinBatchForPruneFilter;
    if (batched) {
      const size_t n = scratch->entries.size();
      scratch->points.resize(n);
      for (size_t i = 0; i < n; ++i) {
        scratch->points[i] = scratch->entries[i].point;
      }
      scratch->classes.resize(n);
      filter->Classify(rec.mbr, rec.min_max_radius, rec.ia.IsEmpty(),
                       scratch->points, scratch->classes.data());
      for (size_t i = 0; i < n; ++i) {
        const RTreeEntry& e = scratch->entries[i];
        PruneLaneClass cls = scratch->classes[i];
        if (cls == PruneLaneClass::kUndecided) {
          cls = ClassifyExact(rec, e.point);
        } else if (self_check) {
          const PruneLaneClass exact = ClassifyExact(rec, e.point);
          if (exact != cls) {
            ReportPruneFilterViolation(rec, e, cls, exact);
            cls = exact;
          }
        }
        dispatch(e, cls);
      }
    } else {
      for (const RTreeEntry& e : scratch->entries) {
        dispatch(e, ClassifyExact(rec, e.point));
      }
    }
  } else {
    index.QueryRect(rec.nib.BoundingBox(), [&](const RTreeEntry& e) {
      dispatch(e, ClassifyExact(rec, e.point));
    });
  }
  if (stats != nullptr) {
    stats->pairs_pruned_by_nib +=
        static_cast<int64_t>(num_candidates) - inside_nib;
  }
}

template <typename Index>
void ClassifyImpl(const Index& index, const ObjectStore& store,
                  const InfluenceKernel& kernel, uint32_t first_record,
                  uint32_t last_record, size_t num_candidates,
                  SolverStats* stats, const PruneIaFn& ia_certified,
                  const PruneRemnantFn& remnant) {
  const bool self_check = SelfCheckEnabled();
  const SimdPruneFilter filter(kernel.simd_tier());
  const SimdPruneFilter* filter_ptr =
      filter.tier() == SimdTier::kScalar ? nullptr : &filter;
  PruneScratch scratch;
  for (uint32_t k = first_record; k < last_record; ++k) {
    ClassifyRecord(index, store, store.records()[k], k, num_candidates, stats,
                   self_check, kernel, filter_ptr, &scratch, ia_certified,
                   remnant);
  }
}

template <typename Index>
void PruneAndValidateImpl(const Index& index, const ObjectStore& store,
                          const InfluenceKernel& kernel, uint32_t first_record,
                          uint32_t last_record, std::span<int64_t> influence,
                          SolverStats* stats) {
  const bool self_check = SelfCheckEnabled();
  const SimdPruneFilter filter(kernel.simd_tier());
  const SimdPruneFilter* filter_ptr =
      filter.tier() == SimdTier::kScalar ? nullptr : &filter;
  PruneScratch scratch;
  // Per-object scratch, reused across records: the remnant set stays tiny
  // relative to the candidate count whenever pruning bites.
  std::vector<Point> remnant_points;
  std::vector<uint32_t> remnant_ids;
  std::vector<uint8_t> influenced;
  for (uint32_t k = first_record; k < last_record; ++k) {
    const ObjectRecord& rec = store.records()[k];
    remnant_points.clear();
    remnant_ids.clear();
    ClassifyRecord(
        index, store, rec, k, influence.size(), stats, self_check, kernel,
        filter_ptr, &scratch,
        [&](const RTreeEntry& e, uint32_t) { ++influence[e.id]; },
        [&](const RTreeEntry& e, uint32_t) {
          remnant_points.push_back(e.point);
          remnant_ids.push_back(e.id);
        });
    if (remnant_points.empty()) continue;
    // DecideMany routes batches of >=4 remnants through the SIMD
    // filter-and-refine path; decisions stay bit-identical to per-pair
    // Decide (see influence_kernel.h).
    influenced.assign(remnant_points.size(), 0);
    const InfluenceBatchCounters counters =
        kernel.DecideMany(remnant_points, store.positions(rec), influenced);
    if (stats != nullptr) {
      stats->pairs_validated += static_cast<int64_t>(remnant_points.size());
      stats->positions_scanned += counters.positions_seen;
      stats->early_stops += counters.early_stops;
    }
    for (size_t i = 0; i < remnant_ids.size(); ++i) {
      if (influenced[i] != 0) ++influence[remnant_ids[i]];
    }
  }
}

}  // namespace

void ClassifyCandidates(const RTree& index, const ObjectStore& store,
                        const InfluenceKernel& kernel, uint32_t first_record,
                        uint32_t last_record, size_t num_candidates,
                        SolverStats* stats, PruneIaFn ia_certified,
                        PruneRemnantFn remnant) {
  ClassifyImpl(index, store, kernel, first_record, last_record, num_candidates,
               stats, ia_certified, remnant);
}

void ClassifyCandidates(const GridIndex& index, const ObjectStore& store,
                        const InfluenceKernel& kernel, uint32_t first_record,
                        uint32_t last_record, size_t num_candidates,
                        SolverStats* stats, PruneIaFn ia_certified,
                        PruneRemnantFn remnant) {
  ClassifyImpl(index, store, kernel, first_record, last_record, num_candidates,
               stats, ia_certified, remnant);
}

void ClassifyCandidates(const RTree& index, const InfluenceArcsRegion& ia,
                        const NonInfluenceBoundary& nib,
                        const InfluenceKernel& kernel,
                        std::span<const Point> positions, PruneIaFn ia_certified,
                        PruneRemnantFn remnant) {
  if (SelfCheckEnabled()) {
    AuditClassification(index, ia, nib, kernel, positions);
  }
  index.QueryRect(nib.BoundingBox(), [&](const RTreeEntry& e) {
    if (!nib.Contains(e.point)) return;
    if (!ia.IsEmpty() && ia.Contains(e.point)) {
      ia_certified(e, 0);
    } else {
      remnant(e, 0);
    }
  });
}

void PruneAndValidate(const RTree& index, const ObjectStore& store,
                      const InfluenceKernel& kernel, uint32_t first_record,
                      uint32_t last_record, std::span<int64_t> influence,
                      SolverStats* stats) {
  PruneAndValidateImpl(index, store, kernel, first_record, last_record,
                       influence, stats);
}

void PruneAndValidate(const GridIndex& index, const ObjectStore& store,
                      const InfluenceKernel& kernel, uint32_t first_record,
                      uint32_t last_record, std::span<int64_t> influence,
                      SolverStats* stats) {
  PruneAndValidateImpl(index, store, kernel, first_record, last_record,
                       influence, stats);
}

}  // namespace pinocchio
