#include "core/object_store.h"

#include "util/logging.h"

namespace pinocchio {

ObjectStore::ObjectStore(const std::vector<MovingObject>& objects,
                         const ProbabilityFunction& pf, double tau)
    : tau_(tau) {
  PINO_CHECK_GT(tau, 0.0);
  PINO_CHECK_LT(tau, 1.0);
  size_t total_positions = 0;
  for (const MovingObject& o : objects) total_positions += o.positions.size();
  arena_.reserve(total_positions);
  records_.reserve(objects.size());
  for (const MovingObject& o : objects) Append(o, pf);
}

double ObjectStore::RadiusFor(const ProbabilityFunction& pf, size_t n) {
  auto it = radius_by_n_.find(n);
  if (it == radius_by_n_.end()) {
    it = radius_by_n_.emplace(n, pf.MinMaxRadius(tau_, n)).first;
  }
  return it->second;
}

const ObjectRecord& ObjectStore::Append(const MovingObject& o,
                                        const ProbabilityFunction& pf) {
  PINO_CHECK(!o.positions.empty()) << "object " << o.id << " has no positions";
  const size_t offset = arena_.size();
  arena_.insert(arena_.end(), o.positions.begin(), o.positions.end());
  records_.emplace_back(o.id, offset,
                        static_cast<uint32_t>(o.positions.size()),
                        o.ActivityMbr(), RadiusFor(pf, o.positions.size()));
  return records_.back();
}

void ObjectStore::Retune(const ProbabilityFunction& pf, double tau) {
  PINO_CHECK_GT(tau, 0.0);
  PINO_CHECK_LT(tau, 1.0);
  tau_ = tau;
  radius_by_n_.clear();
  for (ObjectRecord& rec : records_) {
    rec.min_max_radius = RadiusFor(pf, rec.position_count);
    rec.ia = InfluenceArcsRegion(rec.mbr, rec.min_max_radius);
    rec.nib = NonInfluenceBoundary(rec.mbr, rec.min_max_radius);
  }
}

}  // namespace pinocchio
