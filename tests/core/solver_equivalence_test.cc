// The central correctness property of the paper: NA, PIN, PIN-VO and
// PIN-VO* agree. NA and PIN agree on the full influence vector; the VO
// variants agree on the optimum (and the top-k prefix). Swept across
// instance shapes, thresholds and probability functions.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "baselines/brnn_star.h"
#include "baselines/range_solver.h"
#include "core/naive_solver.h"
#include "core/pinocchio_grid_solver.h"
#include "core/pinocchio_hull_solver.h"
#include "core/pinocchio_solver.h"
#include "core/pinocchio_vo_solver.h"
#include "core/prepared_instance.h"
#include "parallel/parallel_solvers.h"
#include "prob/alternative_pfs.h"
#include "prob/power_law.h"
#include "testing/instance_helpers.h"

namespace pinocchio {
namespace {

using testing_helpers::InstanceOptions;
using testing_helpers::RandomInstance;

struct SweepCase {
  uint64_t seed;
  ProbabilityFunctionPtr pf;
  double tau;
  InstanceOptions opts;
  std::string label;
};

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  const auto power_law = std::make_shared<PowerLawPF>(0.9, 1.0);
  const auto power_law_steep = std::make_shared<PowerLawPF>(0.7, 1.25);
  const auto logsig = std::make_shared<LogsigPF>(0.5);
  const auto linear = std::make_shared<LinearPF>(0.5, 3000.0);
  const auto concave = std::make_shared<ConcavePF>(0.5, 3000.0);

  uint64_t seed = 9000;
  // 0.01/0.99 exercise the extremes: near-total influence and the
  // uninfluenceable-object sentinel (0.99 needs a per-position probability
  // above several PFs' maxima for small n).
  for (double tau : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    for (const ProbabilityFunctionPtr& pf :
         std::vector<ProbabilityFunctionPtr>{power_law, power_law_steep,
                                             logsig, linear, concave}) {
      SweepCase c;
      c.seed = ++seed;
      c.pf = pf;
      c.tau = tau;
      c.label = pf->Name() + "_tau" + std::to_string(tau);
      cases.push_back(c);
    }
  }
  // Shape extremes under the default PF.
  const std::vector<std::pair<std::string, InstanceOptions>> shapes = {
      {"tiny", {3, 2, 1, 3, 5000.0, 0.5}},
      {"single_positions", {40, 30, 1, 1, 30000.0, 0.3}},
      {"many_positions", {15, 15, 60, 120, 30000.0, 0.3}},
      {"all_roamers", {30, 25, 5, 30, 30000.0, 1.0}},
      {"no_roamers", {30, 25, 5, 30, 30000.0, 0.0}},
      {"dense_small_extent", {30, 25, 5, 30, 2000.0, 0.3}},
      {"sparse_huge_extent", {30, 25, 5, 30, 300000.0, 0.3}},
      {"many_candidates", {10, 150, 5, 20, 30000.0, 0.3}},
      {"many_objects", {200, 10, 2, 10, 30000.0, 0.3}},
  };
  for (const auto& [label, opts] : shapes) {
    SweepCase c;
    c.seed = ++seed;
    c.pf = power_law;
    c.tau = 0.7;
    c.opts = opts;
    c.label = label;
    cases.push_back(c);
  }
  return cases;
}

class SolverEquivalenceTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SolverEquivalenceTest, AllSolversAgree) {
  const SweepCase& c = GetParam();
  const ProblemInstance instance = RandomInstance(c.seed, c.opts);
  SolverConfig config;
  config.pf = c.pf;
  config.tau = c.tau;

  const SolverResult naive = NaiveSolver().Solve(instance, config);
  const SolverResult pin = PinocchioSolver().Solve(instance, config);
  const SolverResult vo = PinocchioVOSolver().Solve(instance, config);
  const SolverResult star = PinocchioVOStarSolver().Solve(instance, config);

  // PIN is exact on every candidate.
  EXPECT_EQ(pin.influence, naive.influence) << c.label;

  // VO variants return an optimum with the true maximum influence.
  EXPECT_EQ(vo.best_influence, naive.best_influence) << c.label;
  EXPECT_EQ(naive.influence[vo.best_candidate], naive.best_influence)
      << c.label;
  EXPECT_EQ(star.best_influence, naive.best_influence) << c.label;
  EXPECT_EQ(naive.influence[star.best_candidate], naive.best_influence)
      << c.label;

  // And their reported influences never exceed the truth.
  for (size_t j = 0; j < instance.candidates.size(); ++j) {
    EXPECT_LE(vo.influence[j], naive.influence[j]) << c.label;
    EXPECT_LE(star.influence[j], naive.influence[j]) << c.label;
  }
}

// The engine-layer counterpart of the equivalence sweep: one shared
// PreparedInstance handed to EVERY solver must reproduce the legacy
// prepare-per-call path bit for bit — influence vectors, winners and
// rankings alike. This is the contract that makes "build once, query many"
// safe to adopt.
TEST_P(SolverEquivalenceTest, SharedPreparedInstanceMatchesLegacyPath) {
  const SweepCase& c = GetParam();
  const ProblemInstance instance = RandomInstance(c.seed, c.opts);
  SolverConfig config;
  config.pf = c.pf;
  config.tau = c.tau;

  const PreparedInstance prepared(instance, config);

  const NaiveSolver na;
  const PinocchioSolver pin;
  const PinocchioVOSolver vo;
  const PinocchioVOStarSolver star;
  const PinocchioGridSolver grid;
  const PinocchioHullSolver hull;
  const ParallelNaiveSolver na_par(2);
  const ParallelPinocchioSolver pin_par(2);
  const BrnnStarSolver brnn;
  const RangeSolver range(0.5, 2000.0);

  const std::vector<const Solver*> solvers = {&na,   &pin,    &vo,
                                              &star, &grid,   &hull,
                                              &na_par, &pin_par, &brnn, &range};
  for (const Solver* solver : solvers) {
    const SolverResult from_prepared = solver->Solve(prepared);
    const SolverResult legacy = solver->Solve(instance, config);
    EXPECT_EQ(from_prepared.influence, legacy.influence)
        << c.label << " " << solver->Name();
    EXPECT_EQ(from_prepared.best_candidate, legacy.best_candidate)
        << c.label << " " << solver->Name();
    EXPECT_EQ(from_prepared.best_influence, legacy.best_influence)
        << c.label << " " << solver->Name();
    EXPECT_EQ(from_prepared.ranking, legacy.ranking)
        << c.label << " " << solver->Name();
    EXPECT_EQ(from_prepared.influence_exact, legacy.influence_exact)
        << c.label << " " << solver->Name();
    // Prepared solves pay no build cost; legacy solves record it.
    EXPECT_EQ(from_prepared.stats.prepare_seconds, 0.0)
        << c.label << " " << solver->Name();
    EXPECT_GE(legacy.stats.elapsed_seconds, legacy.stats.solve_seconds)
        << c.label << " " << solver->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverEquivalenceTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

}  // namespace
}  // namespace pinocchio
