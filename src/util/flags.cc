#include "util/flags.h"

#include <algorithm>

#include "util/string_utils.h"

namespace pinocchio {

FlagParser::FlagParser(const std::vector<std::string>& args) { Parse(args); }

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  Parse(args);
}

void FlagParser::Parse(const std::vector<std::string>& args) {
  // Records one occurrence of `name`. A flag seen both bare and with a
  // value is almost always a swallowed argument (e.g. `--out --legacy`
  // followed by `--out=x` elsewhere), so the disagreement is reported via
  // errors() instead of letting one occurrence silently shadow the other.
  const auto record = [&](const std::string& name, const std::string& value,
                          bool bare) {
    const auto it = valueless_.find(name);
    if (it != valueless_.end() && it->second != bare) {
      errors_.push_back("flag --" + name +
                        " redefined inconsistently: given both with and "
                        "without a value");
    }
    values_[name] = value;
    valueless_[name] = bare;
  };

  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || !StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      record(body.substr(0, eq), body.substr(eq + 1), /*bare=*/false);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean (detectable via IsValueless when a value was expected).
    if (i + 1 < args.size() && !StartsWith(args[i + 1], "--")) {
      record(body, args[i + 1], /*bare=*/false);
      ++i;
    } else {
      record(body, "", /*bare=*/true);
    }
  }
}

bool FlagParser::IsValueless(const std::string& name) const {
  const auto it = valueless_.find(name);
  return it != valueless_.end() && it->second;
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::optional<std::string> FlagParser::GetString(
    const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  const auto vl = valueless_.find(name);
  if (vl != valueless_.end() && vl->second) return std::nullopt;
  return it->second;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  return GetString(name).value_or(default_value);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  const auto raw = GetString(name);
  if (!raw.has_value()) return default_value;
  double v = 0.0;
  return ParseDouble(*raw, &v) ? v : default_value;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  const auto raw = GetString(name);
  if (!raw.has_value()) return default_value;
  int64_t v = 0;
  return ParseInt64(*raw, &v) ? v : default_value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  if (!Has(name)) return default_value;
  const auto vl = valueless_.find(name);
  if (vl != valueless_.end() && vl->second) return true;
  const std::string value = GetString(name, "");
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  return default_value;
}

std::vector<std::string> FlagParser::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    (void)value;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> FlagParser::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

}  // namespace pinocchio
