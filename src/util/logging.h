// Lightweight leveled logging for the PINOCCHIO library.
//
// Usage:
//   PINO_LOG(INFO) << "built R-tree with " << n << " leaves";
//   PINO_CHECK(x > 0) << "x must be positive, got " << x;
//
// Logging is writer-synchronized and cheap when the level is filtered out.

#ifndef PINOCCHIO_UTIL_LOGGING_H_
#define PINOCCHIO_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pinocchio {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the current global minimum level; messages below it are dropped.
LogLevel GetLogLevel();

/// Sets the global minimum log level.
void SetLogLevel(LogLevel level);

/// Returns a short human-readable tag ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

namespace internal {

// Accumulates one log line and flushes it (thread-safely) on destruction.
// A kFatal message aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace pinocchio

#define PINO_LOG_DEBUG ::pinocchio::LogLevel::kDebug
#define PINO_LOG_INFO ::pinocchio::LogLevel::kInfo
#define PINO_LOG_WARNING ::pinocchio::LogLevel::kWarning
#define PINO_LOG_ERROR ::pinocchio::LogLevel::kError
#define PINO_LOG_FATAL ::pinocchio::LogLevel::kFatal

#define PINO_LOG(severity)                                              \
  (PINO_LOG_##severity < ::pinocchio::GetLogLevel())                    \
      ? (void)0                                                         \
      : ::pinocchio::internal::LogMessageVoidify() &                    \
            ::pinocchio::internal::LogMessage(PINO_LOG_##severity,      \
                                              __FILE__, __LINE__)       \
                .stream()

#define PINO_CHECK(condition)                                           \
  (condition)                                                           \
      ? (void)0                                                         \
      : ::pinocchio::internal::LogMessageVoidify() &                    \
            ::pinocchio::internal::LogMessage(PINO_LOG_FATAL, __FILE__, \
                                              __LINE__)                 \
                    .stream()                                           \
                << "Check failed: " #condition " "

#define PINO_CHECK_OP(op, a, b) PINO_CHECK((a)op(b))
#define PINO_CHECK_EQ(a, b) PINO_CHECK_OP(==, a, b)
#define PINO_CHECK_NE(a, b) PINO_CHECK_OP(!=, a, b)
#define PINO_CHECK_LT(a, b) PINO_CHECK_OP(<, a, b)
#define PINO_CHECK_LE(a, b) PINO_CHECK_OP(<=, a, b)
#define PINO_CHECK_GT(a, b) PINO_CHECK_OP(>, a, b)
#define PINO_CHECK_GE(a, b) PINO_CHECK_OP(>=, a, b)

#endif  // PINOCCHIO_UTIL_LOGGING_H_
