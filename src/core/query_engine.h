// The bound-domination candidate-evaluation engine shared by every query
// family. PINOCCHIO-VO's Strategy-1 machinery (Section 5) is in essence a
// generic loop: maintain a [minInf, maxInf] bracket per candidate from the
// IA/NIB prune phase, walk the candidates in decreasing-upper-bound order
// and validate verification sets one record at a time, letting a policy
// decide when a candidate is admitted, aborted mid-validation or the walk
// stops altogether. The exact top-k cut-off of Algorithm 3 is one such
// policy; the influence/cost skyline and the weighted argmax are others.
//
// EvaluateBoundOrdered() owns the counter discipline (heap_pops,
// pairs_validated, positions_scanned, early_stops, strategy1_cutoffs) so
// every policy reports work identically — the refactored PinocchioVOSolver
// is bit-identical, counters included, to the pre-engine loop.
//
// The greedy diversified-selection family does not bracket influence per
// candidate; it rides the engine's other shared substrate, the CSR
// influence sets built by the same prune pipeline.

#ifndef PINOCCHIO_CORE_QUERY_ENGINE_H_
#define PINOCCHIO_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "core/object_store.h"
#include "core/prepared_instance.h"
#include "core/prune_pipeline.h"
#include "core/solver.h"
#include "prob/influence_kernel.h"
#include "util/logging.h"

namespace pinocchio {
namespace query {

/// Running k-th-largest tracker for the generalised maxminInf cut-off.
/// With capacity 1 this is exactly the paper's global maxminInf.
class CutoffTracker {
 public:
  explicit CutoffTracker(size_t capacity) : capacity_(capacity) {
    PINO_CHECK_GT(capacity, 0u);
  }

  void Push(int64_t lower_bound) {
    if (heap_.size() < capacity_) {
      heap_.push(lower_bound);
    } else if (lower_bound > heap_.top()) {
      heap_.pop();
      heap_.push(lower_bound);
    }
  }

  /// True once `capacity` bounds have been recorded; before that no
  /// candidate may be discarded.
  bool Saturated() const { return heap_.size() >= capacity_; }

  /// The current cut-off (k-th largest recorded bound).
  int64_t Value() const { return heap_.empty() ? 0 : heap_.top(); }

 private:
  size_t capacity_;
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<>> heap_;
};

/// Strict total order of the validation queue: maxInf descending, minInf
/// descending, candidate index ascending. The index tie-break makes this
/// exactly the order a stable sort by (maxInf, minInf) produces over an
/// ascending-index input — the invariant the per-shard heapsort +
/// tournament merge of the parallel solver relies on to replay it.
inline bool OrderBefore(std::span<const int64_t> min_inf,
                        std::span<const int64_t> max_inf, uint32_t a,
                        uint32_t b) {
  if (max_inf[a] != max_inf[b]) return max_inf[a] > max_inf[b];
  if (min_inf[a] != min_inf[b]) return min_inf[a] > min_inf[b];
  return a < b;
}

/// Per-candidate influence brackets plus the verification sets backing
/// them, as produced by the prune phase:
///
///   minInf[j]  — IA certificates (records certainly influenced), raised
///                towards the exact influence as validation proceeds;
///   maxInf[j]  — minInf[j] + |VS(j)| (every other record was excluded by
///                its NIB), lowered as validation refutes records;
///   VS(j)      — record indices whose NIB contains candidate j but whose
///                IA does not, in one flat CSR layout (vs_data sliced by
///                vs_offsets) so the prune phase performs O(1) allocations
///                however large the candidate set grows.
///
/// When built without pruning (PINOCCHIO-VO*) every candidate starts with
/// bounds [0, r] and shares the identity verification set `all_records`.
struct CandidateBrackets {
  std::vector<int64_t> min_inf;
  std::vector<int64_t> max_inf;
  std::vector<uint32_t> vs_offsets;  // size m + 1; empty when !pruned
  std::vector<uint32_t> vs_data;
  std::vector<uint32_t> all_records;  // identity set when !pruned
  bool pruned = true;

  size_t num_candidates() const { return min_inf.size(); }

  std::span<const uint32_t> VerificationSet(uint32_t j) const {
    if (!pruned) return all_records;
    return std::span<const uint32_t>(vs_data).subspan(
        vs_offsets[j], vs_offsets[j + 1] - vs_offsets[j]);
  }
};

/// Runs the IA/NIB prune phase and assembles the brackets. IA/NIB counters
/// go to `stats` (may be null). `use_pruning == false` skips the phase
/// entirely (the VO* ablation).
CandidateBrackets BuildCandidateBrackets(const PreparedInstance& prepared,
                                         const InfluenceKernel& kernel,
                                         bool use_pruning, SolverStats* stats);

/// Assembles the CSR verification sets and upper bounds of `brackets` from
/// IA-certified lower bounds (already summed into `brackets->min_inf`,
/// with max_inf preset to the record count) and remnant pairs delivered as
/// ordered chunks. The chunk concatenation order defines the per-candidate
/// record order, so the sequential builder (one chunk) and the
/// morsel-parallel builder (per-morsel chunks in morsel order) produce
/// byte-identical layouts — the stable size-then-fill counting sort
/// preserves it.
void FinishBrackets(
    CandidateBrackets* brackets,
    std::span<const std::vector<std::pair<uint32_t, uint32_t>>> pair_chunks);

/// Candidate indices sorted under OrderBefore — the engine's canonical
/// decreasing-upper-bound evaluation order.
std::vector<uint32_t> BoundDominationOrder(const CandidateBrackets& brackets);

/// A policy's verdict on the next candidate in bound order.
enum class CandidateAdmission : uint8_t {
  kStop,      // no remaining candidate can matter: end the walk
  kSkip,      // this candidate is settled without validation; keep walking
  kEvaluate,  // validate this candidate's verification set
};

/// The bound-ordered evaluation loop (Algorithm 3 lines 13-27, with the
/// acceptance decisions delegated to `policy`). Walks `order`; for each
/// admitted candidate it validates the verification set record by record
/// through the shared influence kernel (Strategy 2 early stops included),
/// asking the policy before each record whether to abort (the generalised
/// Strategy-1 mid-validation cut-off, counted as strategy1_cutoffs).
///
/// Policy contract (duck-typed; see TopKCutoffPolicy for the canonical
/// shape):
///   CandidateAdmission Admit(uint32_t j)             — before heap_pops
///   bool AbortValidation(uint32_t j)                 — before each record
///   void OnDecision(uint32_t j, uint32_t rec, bool influenced)
///   void Settle(uint32_t j, bool complete)           — after the set;
///       `complete` is false iff validation aborted early
///
/// `verification_set` need not return the full prune-phase set: the
/// approximate tier (core/approx_solver.h) returns a deterministic sample
/// of it per candidate and scales the observed decisions into a certified
/// influence bracket — the loop is agnostic as long as the span stays
/// alive for the candidate's walk.
///
/// The loop is inherently sequential — what the policy learns from
/// candidate i gates the work spent on candidate i+1 — which is why the
/// parallel solvers reuse it verbatim after their parallel prune and order
/// phases.
template <typename Policy>
void EvaluateBoundOrdered(
    const PreparedInstance& prepared, const InfluenceKernel& kernel,
    std::span<const uint32_t> order,
    FunctionRef<std::span<const uint32_t>(uint32_t)> verification_set,
    SolverStats* stats, Policy& policy) {
  const ObjectStore& store = prepared.store();
  for (uint32_t j : order) {
    const CandidateAdmission admission = policy.Admit(j);
    if (admission == CandidateAdmission::kStop) break;
    if (admission == CandidateAdmission::kSkip) continue;
    ++stats->heap_pops;

    const Point& c = prepared.candidate(j);
    bool complete = true;
    for (uint32_t rec_idx : verification_set(j)) {
      if (policy.AbortValidation(j)) {
        ++stats->strategy1_cutoffs;
        complete = false;
        break;
      }
      ++stats->pairs_validated;

      // Strategy 2: the kernel scans the record's arena span until Lemma 4
      // decides influence.
      const InfluenceDecision decision =
          kernel.Decide(c, store.positions(rec_idx));
      stats->positions_scanned += decision.positions_seen;
      if (decision.decided_early) ++stats->early_stops;

      policy.OnDecision(j, rec_idx, decision.influenced);
    }
    policy.Settle(j, complete);
  }
}

/// Exact top-k acceptance: the paper's Strategy 1. A candidate is
/// dominated once the k-th best validated lower bound exceeds its upper
/// bound; domination of the head candidate ends the walk (bound order
/// guarantees no later candidate can do better). Operates on the caller's
/// bracket vectors in place, exactly like the pre-engine loop did.
class TopKCutoffPolicy {
 public:
  TopKCutoffPolicy(size_t capacity, std::vector<int64_t>* min_inf,
                   std::vector<int64_t>* max_inf)
      : cutoff_(capacity), min_inf_(min_inf), max_inf_(max_inf) {}

  CandidateAdmission Admit(uint32_t j) const {
    return Dominated(j) ? CandidateAdmission::kStop
                        : CandidateAdmission::kEvaluate;
  }

  bool AbortValidation(uint32_t j) const { return Dominated(j); }

  void OnDecision(uint32_t j, uint32_t /*rec_idx*/, bool influenced) {
    if (influenced) {
      ++(*min_inf_)[j];
    } else {
      --(*max_inf_)[j];
    }
  }

  void Settle(uint32_t j, bool /*complete*/) { cutoff_.Push((*min_inf_)[j]); }

 private:
  bool Dominated(uint32_t j) const {
    return cutoff_.Saturated() && (*max_inf_)[j] < cutoff_.Value();
  }

  CutoffTracker cutoff_;
  std::vector<int64_t>* min_inf_;
  std::vector<int64_t>* max_inf_;
};

// ---------------------------------------------------------------- skyline

/// One member of the influence/cost skyline, with its exact influence.
struct SkylineMember {
  uint32_t candidate = 0;
  int64_t influence = 0;
  double cost = 0.0;
};

/// Result of a skyline query. `members` is the maximal set of candidates
/// not dominated in (influence up, cost down): no other candidate has
/// cost <= and influence >= with at least one strict. Candidates tying on
/// both coordinates are all kept. Sorted by cost ascending (then candidate
/// index; equal-cost members necessarily tie on influence).
struct SkylineResult {
  std::vector<SkylineMember> members;
  /// Candidates settled as dominated straight from their brackets, without
  /// validating a single record (mid-validation aborts are counted in
  /// stats.strategy1_cutoffs instead).
  int64_t bound_skipped = 0;
  SolverStats stats;
};

/// Influence/cost skyline over (inf(c), cost(c)). `cost` must hold one
/// finite value per candidate. Candidates are walked in (cost ascending,
/// bound order) so every already-settled candidate is at most as expensive
/// as the current one — its exact influence dominates the current bracket
/// whenever it reaches the upper bound, letting the engine discard
/// dominated candidates before (or mid-) validation.
SkylineResult SolveSkyline(const PreparedInstance& prepared,
                           std::span<const double> cost);

/// The evaluation phase of SolveSkyline against brackets built elsewhere
/// (the parallel path builds them with the morsel engine and reuses this
/// verbatim — results are bit-identical by construction). Consumes the
/// brackets; fills `result->members` / `bound_skipped` and the validation
/// counters of `result->stats`. Timing is the caller's job.
void SolveSkylineOnBrackets(const PreparedInstance& prepared,
                            const InfluenceKernel& kernel,
                            std::span<const double> cost,
                            CandidateBrackets* brackets, SkylineResult* result);

// ------------------------------------------------------------ diversified

/// Per-candidate influenced-object sets in one flat CSR layout, built by
/// the shared prune pipeline (IA certificates verbatim, remnants decided by
/// the batch kernel); records ascend within each candidate's slice.
struct InfluenceSets {
  std::vector<uint32_t> offsets;  // size m + 1
  std::vector<uint32_t> objects;  // record indices

  size_t num_candidates() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  std::span<const uint32_t> Objects(uint32_t j) const {
    return std::span<const uint32_t>(objects).subspan(
        offsets[j], offsets[j + 1] - offsets[j]);
  }
};

/// Appends (candidate, record) influence pairs for records
/// [first_record, last_record) in deterministic record-major order — the
/// building block of both the sequential and the morsel-parallel
/// influence-set builders.
void CollectInfluencePairs(const PreparedInstance& prepared,
                           const InfluenceKernel& kernel,
                           uint32_t first_record, uint32_t last_record,
                           std::vector<std::pair<uint32_t, uint32_t>>* pairs);

/// Counting-sorts pair chunks (concatenated in chunk order) into the CSR
/// layout. Chunk order defines per-candidate record order, mirroring
/// FinishBrackets.
InfluenceSets InfluenceSetsFromPairs(
    size_t num_candidates,
    std::span<const std::vector<std::pair<uint32_t, uint32_t>>> pair_chunks);

/// Influence sets for the whole store (the sequential builder).
InfluenceSets BuildInfluenceSets(const PreparedInstance& prepared,
                                 const InfluenceKernel& kernel);

/// Result of diversified greedy selection.
struct DiversifiedResult {
  /// Chosen candidate indices, in selection order.
  std::vector<uint32_t> selected;
  /// Union coverage after each selection step; coverage.back() is the
  /// final objective value.
  std::vector<int64_t> coverage;
  /// Marginal-gain evaluations performed (CELF's saving shows here).
  int64_t gain_evaluations = 0;
  /// Candidates discarded for sitting closer than min_separation to an
  /// already-selected facility.
  int64_t separation_rejections = 0;
  double prepare_seconds = 0.0;
  double solve_seconds = 0.0;
  double elapsed_seconds = 0.0;
};

/// Diversified top-k: greedy marginal-coverage selection (CELF-lazy, so
/// typically near-linear in k) subject to a minimum pairwise separation —
/// a candidate closer than `min_separation` to any already-selected
/// facility is permanently discarded (coverage is monotone, so an
/// infeasible candidate can never become worth selecting later). Ties on
/// marginal gain select the smallest candidate index, matching the
/// brute-force greedy reference. `min_separation == 0` degenerates to the
/// classic multi-facility objective. May return fewer than k facilities
/// when the separation constraint (or the candidate count) leaves nothing
/// selectable.
DiversifiedResult SelectDiversified(const PreparedInstance& prepared, size_t k,
                                    double min_separation);

/// The greedy phase of SelectDiversified against influence sets built
/// elsewhere (shared with the morsel-parallel builder; bit-identical by
/// construction). Timing is the caller's job.
void SelectDiversifiedOnSets(const PreparedInstance& prepared, size_t k,
                             double min_separation, const InfluenceSets& sets,
                             DiversifiedResult* result);

}  // namespace query
}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_QUERY_ENGINE_H_
