#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "core/influence_query.h"
#include "core/naive_solver.h"
#include "core/pinocchio_solver.h"
#include "core/pinocchio_vo_solver.h"
#include "geo/point.h"
#include "parallel/morsel_scheduler.h"
#include "parallel/parallel_query.h"
#include "parallel/parallel_solvers.h"
#include "prob/power_law.h"
#include "util/logging.h"

namespace pinocchio {
namespace serve {
namespace {

/// Largest ranking a response will carry; requests asking for more are
/// clamped (the frame cap would reject gigantic rankings anyway).
constexpr size_t kMaxResponseTopK = 4096;

// Every algorithm routes through its morsel-parallel variant: the results
// are bit-identical to the sequential solvers by construction, a budget of
// one thread runs inline on the request thread, and all solve work counts
// into the engine's busy-time accounting either way.
std::unique_ptr<Solver> MakeSolver(WireAlgorithm algorithm,
                                   size_t solve_threads) {
  switch (algorithm) {
    case WireAlgorithm::kPinVO:
      return std::make_unique<ParallelPinocchioVOSolver>(solve_threads);
    case WireAlgorithm::kPin:
      return std::make_unique<ParallelPinocchioSolver>(solve_threads);
    case WireAlgorithm::kNaive:
      return std::make_unique<ParallelNaiveSolver>(solve_threads);
  }
  return nullptr;
}

bool ValidUpdate(const UpdateRequest& update, std::string* reason) {
  if (update.objects.empty() && update.candidates.empty()) {
    *reason = "empty update";
    return false;
  }
  for (const UpdateObject& o : update.objects) {
    if (o.positions.empty()) {
      *reason = "object with zero positions";
      return false;
    }
  }
  return true;
}

}  // namespace

InfluenceService::InfluenceService(ProblemInstance instance,
                                   SolverConfig config,
                                   const ServiceOptions& options)
    : options_(options) {
  PINO_CHECK(config.pf != nullptr) << "service requires a configured PF";
  config.top_k = std::max<size_t>(1, options_.prepared_top_k);
  if (options_.stream_window_seconds > 0.0) {
    StreamingPrimeLS::Options stream_options;
    stream_options.config = config;
    stream_options.window_seconds = options_.stream_window_seconds;
    stream_ = std::make_unique<StreamingPrimeLS>(instance.candidates,
                                                 std::move(stream_options));
  }
  holder_.Publish(std::make_shared<const ServerSnapshot>(
      /*epoch=*/1, std::move(instance), config));
  rebuild_thread_ = std::thread(&InfluenceService::RebuildLoop, this);
}

InfluenceService::~InfluenceService() {
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    stopping_ = true;
  }
  update_cv_.notify_all();
  if (rebuild_thread_.joinable()) rebuild_thread_.join();
}

Response InfluenceService::Execute(const Request& request) {
  switch (request.type) {
    case RequestType::kSolve:
      solve_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoSolve(request.solve);
    case RequestType::kTopK:
      topk_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoTopK(request.top_k);
    case RequestType::kProbe:
      probe_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoProbe(request.probe);
    case RequestType::kWhatIf:
      whatif_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoWhatIf(request.what_if);
    case RequestType::kUpdate:
      update_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoUpdate(request.update);
    case RequestType::kStats:
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoStats();
    case RequestType::kSkyline:
      skyline_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoSkyline(request.skyline);
    case RequestType::kDiversified:
      diverse_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoDiversified(request.diversified);
    case RequestType::kObserve:
      observe_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoObserve(request.observe);
    case RequestType::kAdvance:
      advance_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoAdvance(request.advance);
    case RequestType::kApproxTopK:
      approx_requests_.fetch_add(1, std::memory_order_relaxed);
      return DoApproxTopK(request.approx);
  }
  return MakeError(ErrorCode::kUnknownType, "unknown request type");
}

Response InfluenceService::MakeError(ErrorCode code, std::string message) {
  Response response;
  response.type = ResponseType::kError;
  response.error.code = code;
  response.error.message = std::move(message);
  return response;
}

Response InfluenceService::MakeSolveResponse(const ServerSnapshot& snap,
                                             const SolverResult& result,
                                             size_t k) {
  Response response;
  response.type = ResponseType::kSolve;
  SolveResponse& s = response.solve;
  s.epoch = snap.epoch;
  s.num_objects = snap.prepared.num_objects();
  s.num_candidates = snap.prepared.num_candidates();
  s.best_candidate = result.best_candidate;
  s.best_influence = result.best_influence;
  s.solve_seconds = result.stats.solve_seconds;
  const size_t count = std::min(k, result.ranking.size());
  // VO solves guarantee exact influence only for the prepared top-k
  // prefix; entries past it may carry lower bounds. Exact solvers (PIN,
  // NA) mark everything exact via influence_exact.
  const size_t exact_prefix =
      result.influence_exact
          ? result.ranking.size()
          : std::min(snap.prepared.config().top_k, result.ranking.size());
  s.topk.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t candidate = result.ranking[i];
    s.topk.push_back({candidate, result.influence[candidate],
                      /*exact=*/i < exact_prefix});
  }
  return response;
}

Response InfluenceService::DoSolve(const SolveRequest& request) {
  const std::unique_ptr<Solver> solver =
      MakeSolver(request.algorithm, options_.solve_threads);
  if (solver == nullptr) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest, "unknown algorithm");
  }
  const SnapshotPtr snap = holder_.Acquire();
  const size_t k =
      std::min<size_t>(std::max<uint32_t>(1, request.top_k), kMaxResponseTopK);
  const SolverResult result = solver->Solve(snap->prepared);
  return MakeSolveResponse(*snap, result, k);
}

Response InfluenceService::DoTopK(const TopKRequest& request) {
  const size_t k =
      std::min<size_t>(std::max<uint32_t>(1, request.k), kMaxResponseTopK);
  if (options_.approx_default) return DoTopKViaApprox(k);
  const SnapshotPtr snap = holder_.Acquire();
  // The snapshot is prepared with top_k = prepared_top_k, so VO results
  // are exact for that many leading candidates; beyond it the exact PIN
  // solver ranks every candidate.
  SolverResult result;
  if (k <= snap->prepared.config().top_k) {
    result = ParallelPinocchioVOSolver(options_.solve_threads)
                 .Solve(snap->prepared);
  } else {
    result =
        ParallelPinocchioSolver(options_.solve_threads).Solve(snap->prepared);
  }
  return MakeSolveResponse(*snap, result, k);
}

Response InfluenceService::DoApproxTopK(const ApproxTopKRequest& request) {
  // The decoder rejects out-of-range parameters on the wire, but Execute()
  // is also a direct API (tests, harness) — validate here too.
  if (!(request.epsilon > 0.0) || !(request.epsilon <= 1.0)) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest, "epsilon must be in (0, 1]");
  }
  if (!(request.delta > 0.0) || !(request.delta < 1.0)) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest, "delta must be in (0, 1)");
  }
  const SnapshotPtr snap = holder_.Acquire();
  const size_t k =
      std::min<size_t>(std::max<uint32_t>(1, request.k), kMaxResponseTopK);
  const SketchParams params{request.epsilon, request.delta, request.seed};
  const ApproxTopKResult result = query::SolveApproxTopKParallel(
      snap->prepared, k, params, options_.solve_threads);

  Response response;
  response.type = ResponseType::kApprox;
  ApproxResponse& s = response.approx;
  s.epoch = snap->epoch;
  s.num_objects = snap->prepared.num_objects();
  s.num_candidates = snap->prepared.num_candidates();
  s.solve_seconds = result.stats.solve_seconds;
  s.entries.reserve(result.entries.size());
  for (const ApproxEntry& e : result.entries) {
    s.entries.push_back({e.candidate, e.estimate, e.lo, e.hi, e.exact});
  }
  return response;
}

Response InfluenceService::DoTopKViaApprox(size_t k) {
  const SnapshotPtr snap = holder_.Acquire();
  Stopwatch watch;
  const SketchParams params{options_.approx_epsilon, options_.approx_delta,
                            options_.approx_seed};
  const ApproxTopKResult approx = query::SolveApproxTopKParallel(
      snap->prepared, k, params, options_.solve_threads);

  // Exact refinement: the approximate tier SELECTED the candidates; each
  // one's influence is recomputed exactly, so every reported value (and
  // the per-entry exact flag) is unconditional. Only the membership of
  // the k-set carries the sketch's probabilistic guarantee.
  struct Refined {
    uint32_t candidate;
    int64_t influence;
  };
  std::vector<Refined> refined;
  refined.reserve(approx.entries.size());
  for (const ApproxEntry& e : approx.entries) {
    const int64_t influence =
        e.exact ? e.estimate
                : InfluenceOfCandidate(snap->prepared,
                                       snap->prepared.candidate(e.candidate));
    refined.push_back({e.candidate, influence});
  }
  std::sort(refined.begin(), refined.end(),
            [](const Refined& a, const Refined& b) {
              if (a.influence != b.influence) return a.influence > b.influence;
              return a.candidate < b.candidate;
            });

  Response response;
  response.type = ResponseType::kSolve;
  SolveResponse& s = response.solve;
  s.epoch = snap->epoch;
  s.num_objects = snap->prepared.num_objects();
  s.num_candidates = snap->prepared.num_candidates();
  if (!refined.empty()) {
    s.best_candidate = refined.front().candidate;
    s.best_influence = refined.front().influence;
  }
  s.solve_seconds = watch.ElapsedSeconds();
  s.topk.reserve(refined.size());
  for (const Refined& r : refined) {
    s.topk.push_back({r.candidate, r.influence, /*exact=*/true});
  }
  return response;
}

Response InfluenceService::DoProbe(const ProbeRequest& request) {
  const SnapshotPtr snap = holder_.Acquire();
  Stopwatch watch;
  const int64_t influence =
      InfluenceOfCandidate(snap->prepared, request.location);
  Response response;
  response.type = ResponseType::kProbe;
  response.probe.epoch = snap->epoch;
  response.probe.num_objects = snap->prepared.num_objects();
  response.probe.influence = influence;
  response.probe.solve_seconds = watch.ElapsedSeconds();
  return response;
}

Response InfluenceService::DoWhatIf(const WhatIfRequest& request) {
  if (!(request.tau > 0.0 && request.tau < 1.0)) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest, "tau must be in (0, 1)");
  }
  if (request.rho <= 0.0 || request.rho > 1.0 || request.lambda <= 0.0) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest,
                     "rho must be in (0, 1] and lambda positive");
  }
  const SnapshotPtr snap = holder_.Acquire();
  const size_t k = std::min<size_t>(std::max<uint32_t>(1, request.top_k),
                                    kMaxResponseTopK);

  SolverConfig config = snap->prepared.config();
  config.tau = request.tau;
  config.pf = std::make_shared<PowerLawPF>(request.rho, request.lambda,
                                           /*d0=*/1.0, options_.pf_unit_meters);

  std::lock_guard<std::mutex> lock(whatif_mu_);
  if (whatif_prepared_ == nullptr || whatif_epoch_ != snap->epoch) {
    // The snapshot moved under us: clone its state once, then keep
    // re-tuning the clone across subsequent what-ifs at this epoch.
    whatif_prepared_ =
        std::make_unique<PreparedInstance>(snap->instance, config);
    whatif_epoch_ = snap->epoch;
  } else {
    // Cheap path: Reprepare re-tunes the existing A_2D in place (the
    // position arena and MBRs are reused) and keeps the R-tree.
    whatif_prepared_->Reprepare(config);
  }
  const SolverResult result = PinocchioVOSolver().Solve(*whatif_prepared_);
  // What-if answers are stamped with the epoch of the snapshot whose
  // data they were derived from.
  Response response = MakeSolveResponse(*snap, result, k);
  return response;
}

Response InfluenceService::DoUpdate(const UpdateRequest& request) {
  std::string reason;
  if (!ValidUpdate(request, &reason)) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest, reason);
  }
  const SnapshotPtr snap = holder_.Acquire();
  Response response;
  response.type = ResponseType::kUpdate;
  response.update.epoch = snap->epoch;
  response.update.accepted = true;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    if (stopping_) {
      error_responses_.fetch_add(1, std::memory_order_relaxed);
      return MakeError(ErrorCode::kShuttingDown, "service stopping");
    }
    pending_updates_.push_back(request);
    response.update.pending_updates = pending_updates_.size();
  }
  update_cv_.notify_one();
  return response;
}

Response InfluenceService::DoStats() {
  const SnapshotPtr snap = holder_.Acquire();
  Response response;
  response.type = ResponseType::kStats;
  StatsResponse& s = response.stats;
  s.epoch = snap->epoch;
  s.num_objects = snap->prepared.num_objects();
  s.num_candidates = snap->prepared.num_candidates();
  s.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    s.pending_updates =
        pending_updates_.size() + (rebuild_in_progress_ ? 1 : 0);
  }
  s.solve_requests = solve_requests_.load(std::memory_order_relaxed);
  s.topk_requests = topk_requests_.load(std::memory_order_relaxed);
  s.probe_requests = probe_requests_.load(std::memory_order_relaxed);
  s.whatif_requests = whatif_requests_.load(std::memory_order_relaxed);
  s.update_requests = update_requests_.load(std::memory_order_relaxed);
  s.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  s.skyline_requests = skyline_requests_.load(std::memory_order_relaxed);
  s.diverse_requests = diverse_requests_.load(std::memory_order_relaxed);
  s.error_responses = error_responses_.load(std::memory_order_relaxed);
  s.uptime_seconds = uptime_.ElapsedSeconds();
  s.solve_threads = MorselScheduler(options_.solve_threads).num_threads();
  s.solve_busy_seconds = MorselEngineBusySeconds();
  s.observe_requests = observe_requests_.load(std::memory_order_relaxed);
  s.advance_requests = advance_requests_.load(std::memory_order_relaxed);
  s.stream_observations =
      stream_observations_.load(std::memory_order_relaxed);
  s.stream_window_seconds = options_.stream_window_seconds;
  s.approx_requests = approx_requests_.load(std::memory_order_relaxed);
  if (stream_ != nullptr) {
    std::lock_guard<std::mutex> lock(stream_mu_);
    s.stream_live_objects = stream_->NumLiveObjects();
    s.stream_live_positions = stream_->NumLivePositions();
  }
  return response;
}

Response InfluenceService::DoSkyline(const SkylineRequest& request) {
  const SnapshotPtr snap = holder_.Acquire();
  const size_t m = snap->prepared.num_candidates();
  std::vector<double> cost(m);
  for (size_t j = 0; j < m; ++j) {
    cost[j] = Distance(snap->prepared.candidate(static_cast<uint32_t>(j)),
                       request.cost_origin);
  }
  const query::SkylineResult result = query::SolveSkylineParallel(
      snap->prepared, cost, options_.solve_threads);

  Response response;
  response.type = ResponseType::kSkyline;
  SkylineResponse& s = response.skyline;
  s.epoch = snap->epoch;
  s.num_objects = snap->prepared.num_objects();
  s.num_candidates = m;
  s.bound_skipped = static_cast<uint64_t>(result.bound_skipped);
  s.solve_seconds = result.stats.solve_seconds;
  const size_t count = std::min(result.members.size(), kMaxResponseTopK);
  s.skyline.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const query::SkylineMember& member = result.members[i];
    s.skyline.push_back({member.candidate, member.influence, member.cost});
  }
  return response;
}

Response InfluenceService::DoDiversified(const DiversifiedRequest& request) {
  if (request.min_separation < 0.0) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest, "negative min separation");
  }
  const SnapshotPtr snap = holder_.Acquire();
  const size_t k =
      std::min<size_t>(std::max<uint32_t>(1, request.k), kMaxResponseTopK);

  Response response;
  response.type = ResponseType::kDiversified;
  DiverseResponse& s = response.diverse;
  s.epoch = snap->epoch;
  s.num_objects = snap->prepared.num_objects();
  s.num_candidates = snap->prepared.num_candidates();
  if (snap->prepared.num_candidates() == 0) return response;

  const query::DiversifiedResult result = query::SelectDiversifiedParallel(
      snap->prepared, k, request.min_separation, options_.solve_threads);
  s.gain_evaluations = static_cast<uint64_t>(result.gain_evaluations);
  s.solve_seconds = result.solve_seconds;
  s.selected.reserve(result.selected.size());
  for (size_t i = 0; i < result.selected.size(); ++i) {
    s.selected.push_back({result.selected[i], result.coverage[i]});
  }
  return response;
}

namespace {

// Fills a kStream response from the engine; caller holds the stream lock.
Response MakeStreamResponse(const StreamingPrimeLS& stream, uint64_t applied) {
  Response response;
  response.type = ResponseType::kStream;
  StreamResponse& s = response.stream;
  s.now = stream.now();
  s.live_objects = stream.NumLiveObjects();
  s.live_positions = stream.NumLivePositions();
  s.applied = applied;
  const auto best = stream.Best();
  s.has_best = best.has_value();
  if (best.has_value()) {
    s.best_candidate = static_cast<uint32_t>(best->first);
    s.best_influence = best->second;
  }
  return response;
}

}  // namespace

Response InfluenceService::DoObserve(const ObserveRequest& request) {
  if (stream_ == nullptr) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest,
                     "streaming disabled (server started without a window)");
  }
  std::lock_guard<std::mutex> lock(stream_mu_);
  // Validate the whole batch before touching the engine: observations
  // must be non-decreasing in time, starting no earlier than the stream
  // clock. A rejected batch applies nothing (all-or-nothing), and the
  // engine's own monotonicity check stays unreachable from the wire.
  double last = stream_->now();
  for (const Observation& o : request.observations) {
    if (!(o.time >= last)) {
      error_responses_.fetch_add(1, std::memory_order_relaxed);
      return MakeError(ErrorCode::kBadRequest,
                       "observation times must be non-decreasing and >= "
                       "the stream clock");
    }
    last = o.time;
  }
  for (const Observation& o : request.observations) {
    stream_->Observe(o.object_id, o.time, o.position);
  }
  const auto applied =
      static_cast<uint64_t>(request.observations.size());
  stream_observations_.fetch_add(applied, std::memory_order_relaxed);
  return MakeStreamResponse(*stream_, applied);
}

Response InfluenceService::DoAdvance(const AdvanceRequest& request) {
  if (stream_ == nullptr) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest,
                     "streaming disabled (server started without a window)");
  }
  std::lock_guard<std::mutex> lock(stream_mu_);
  if (!(request.time >= stream_->now())) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    return MakeError(ErrorCode::kBadRequest,
                     "advance time must be >= the stream clock");
  }
  stream_->AdvanceTo(request.time);
  return MakeStreamResponse(*stream_, /*applied=*/0);
}

void InfluenceService::DrainUpdates() {
  std::unique_lock<std::mutex> lock(update_mu_);
  drained_cv_.wait(lock, [this] {
    return pending_updates_.empty() && !rebuild_in_progress_;
  });
}

void InfluenceService::RebuildLoop() {
  for (;;) {
    std::vector<UpdateRequest> batch;
    {
      std::unique_lock<std::mutex> lock(update_mu_);
      update_cv_.wait(lock,
                      [this] { return stopping_ || !pending_updates_.empty(); });
      if (pending_updates_.empty()) {
        // stopping_ with an empty queue: drained, exit.
        drained_cv_.notify_all();
        return;
      }
      batch.swap(pending_updates_);
      rebuild_in_progress_ = true;
    }

    // Build the next snapshot entirely off to the side: readers keep
    // serving the current epoch until the single Publish() below.
    const SnapshotPtr current = holder_.Acquire();
    ProblemInstance next = current->instance;
    for (const UpdateRequest& update : batch) {
      for (const UpdateObject& o : update.objects) {
        next.objects.push_back({o.object_id, o.positions});
      }
      next.candidates.insert(next.candidates.end(),
                             update.candidates.begin(),
                             update.candidates.end());
    }
    auto snapshot = std::make_shared<const ServerSnapshot>(
        current->epoch + 1, std::move(next), current->prepared.config());
    holder_.Publish(snapshot);
    swaps_.fetch_add(1, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lock(update_mu_);
      rebuild_in_progress_ = false;
    }
    drained_cv_.notify_all();
  }
}

}  // namespace serve
}  // namespace pinocchio
