// Common interface, configuration, result and statistics types for all
// PRIME-LS solvers (NA, PINOCCHIO, PINOCCHIO-VO, PINOCCHIO-VO*) and for the
// classical-semantics baselines.

#ifndef PINOCCHIO_CORE_SOLVER_H_
#define PINOCCHIO_CORE_SOLVER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/moving_object.h"
#include "prob/probability_function.h"

namespace pinocchio {

class PreparedInstance;

/// Parameters shared by every solver.
struct SolverConfig {
  /// The distance-based influence probability function PF.
  ProbabilityFunctionPtr pf;
  /// The influence probability threshold tau in (0, 1); paper default 0.7.
  double tau = 0.7;
  /// Node capacity of the candidate R-tree; paper uses 8.
  size_t rtree_fanout = 8;
  /// Number of top candidates whose influence must be exact in the result.
  /// 1 reproduces the paper's algorithms; larger values generalise
  /// Strategy 1 to a top-k cut-off (used by the precision experiments).
  size_t top_k = 1;
};

/// Counters filled by the solvers; they power Fig. 10 and the ablations.
struct SolverStats {
  /// Object-candidate pairs decided "influences" by the influence-arcs rule.
  int64_t pairs_pruned_by_ia = 0;
  /// Object-candidate pairs decided "does not influence" by the
  /// non-influence boundary rule.
  int64_t pairs_pruned_by_nib = 0;
  /// Pairs that reached cumulative-probability validation.
  int64_t pairs_validated = 0;
  /// Individual position probabilities evaluated during validation.
  int64_t positions_scanned = 0;
  /// Validations cut short by Strategy 2 (Lemma 4 early stop).
  int64_t early_stops = 0;
  /// Candidates popped from the VO max-heap before the Strategy-1 cut-off.
  int64_t heap_pops = 0;
  /// Candidate validations abandoned because maxInf fell below maxminInf.
  int64_t strategy1_cutoffs = 0;
  /// Wall-clock seconds spent building shared indexes (Algorithm 1's A_2D
  /// and the candidate R-tree). Zero when the caller supplied an already
  /// prepared instance — that is the whole point of preparing once.
  double prepare_seconds = 0.0;
  /// Wall-clock seconds of the query itself (pruning + validation).
  double solve_seconds = 0.0;
  /// prepare_seconds + solve_seconds; kept so existing reports and callers
  /// keep reading total time under its old name.
  double elapsed_seconds = 0.0;

  /// Total object-candidate pairs resolved by either pruning rule.
  int64_t PairsPruned() const { return pairs_pruned_by_ia + pairs_pruned_by_nib; }
};

/// Outcome of a Solve() call.
struct SolverResult {
  /// Index (into ProblemInstance::candidates) of the winning candidate.
  uint32_t best_candidate = std::numeric_limits<uint32_t>::max();
  /// inf(best_candidate).
  int64_t best_influence = 0;
  /// Per-candidate influence. For exact solvers (NA, PIN) this is inf(c)
  /// for every candidate; for VO solvers entries are lower bounds except
  /// for the top-k candidates, which are exact (see `influence_exact`).
  std::vector<int64_t> influence;
  /// True when `influence` holds the exact inf(c) for every candidate.
  bool influence_exact = false;
  /// Candidate indices ordered by decreasing influence (ties by index).
  /// Exact solvers rank all candidates; VO solvers guarantee the first
  /// min(top_k, m) entries.
  std::vector<uint32_t> ranking;
  SolverStats stats;

  /// The first min(k, ranking.size()) entries of `ranking`: asking for
  /// more candidates than exist clamps to the full ranking instead of
  /// reading past it, and TopK(0) is empty. Note the exactness contract
  /// is the solver's, not this accessor's — a VO solve prepared with
  /// top_k = t guarantees exact influence only for the first min(t, m)
  /// entries (influence_exact is false), so TopK(k) with k > t may
  /// return candidates whose influence values are lower bounds.
  std::vector<uint32_t> TopK(size_t k) const;
};

/// Interface implemented by every location-selection algorithm.
///
/// The primary entry point is Solve(const PreparedInstance&): index
/// construction (Algorithm 1's A_2D plus the candidate R-tree) happens once
/// in the PreparedInstance and is shared by every query. The classic
/// Solve(instance, config) stays as a convenience that prepares internally
/// and delegates, recording the build in `stats.prepare_seconds`.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Short identifier used in reports ("NA", "PIN", "PIN-VO", ...).
  virtual std::string Name() const = 0;

  /// Solves against prepared shared state. `stats.solve_seconds` covers
  /// only the query; `stats.prepare_seconds` stays 0 (the build was paid by
  /// the PreparedInstance, see PreparedInstance::build_stats()).
  virtual SolverResult Solve(const PreparedInstance& prepared) const = 0;

  /// One-shot convenience: prepares `instance` under `config`, solves, and
  /// reports stats with prepare_seconds + solve_seconds = elapsed_seconds.
  /// Subclasses re-export this overload with `using Solver::Solve;`.
  SolverResult Solve(const ProblemInstance& instance,
                     const SolverConfig& config) const;
};

namespace internal {

/// Builds `ranking` / `best_*` fields of a result from its influence vector.
/// Ties are broken towards the smaller candidate index, matching the
/// sequential argmax of the paper's pseudo-code.
void FinalizeResultFromInfluence(SolverResult* result);

/// Stamps the query-phase wall clock and keeps `elapsed_seconds` equal to
/// prepare + solve.
void FinishSolveTiming(SolverStats* stats, double solve_seconds);

}  // namespace internal
}  // namespace pinocchio

#endif  // PINOCCHIO_CORE_SOLVER_H_
