#include "tools/cli.h"

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "baselines/brnn_star.h"
#include "baselines/range_solver.h"
#include "core/multi_facility.h"
#include "core/naive_solver.h"
#include "core/influence_query.h"
#include "core/pinocchio_grid_solver.h"
#include "core/pinocchio_hull_solver.h"
#include "core/pinocchio_solver.h"
#include "core/pinocchio_vo_solver.h"
#include "core/prepared_instance.h"
#include "core/validation.h"
#include "data/binary_io.h"
#include "data/checkin_dataset.h"
#include "data/csv_io.h"
#include "eval/geojson.h"
#include "eval/histogram.h"
#include "eval/report.h"
#include "parallel/parallel_solvers.h"
#include "prob/power_law.h"
#include "traj/traj_io.h"
#include "util/flags.h"
#include "util/string_utils.h"

namespace pinocchio {
namespace cli {
namespace {

constexpr char kUsage[] = R"(pinocchio — probabilistic influence-based location selection

Usage:
  pinocchio generate --profile=foursquare|gowalla [--scale=F] [--seed=N]
            --out=FILE[.csv|.pino]
  pinocchio stats --in=FILE [--detailed]
  pinocchio explain --in=FILE --candidate=J [--candidates=600] [--tau=0.7]
            [--rho=0.9] [--lambda=1.0] [--unit-km=0.1] [--seed=N] [--top=10]
  pinocchio discretize --in=TRAJ.csv --out=CHECKINS.csv [--interval-s=1800]
            (trajectory rows: entity_id,time_seconds,lat,lon)
  pinocchio select --in=FILE --k=3 [--candidates=600] [--tau=0.7]
            [--rho=0.9] [--lambda=1.0] [--unit-km=0.1] [--seed=N]
            (k facilities maximising their union influence, greedy 1-1/e)
  pinocchio solve --in=FILE [--algorithm=pin-vo] [--candidates=600]
            [--tau=0.7] [--rho=0.9] [--lambda=1.0] [--unit-km=0.1]
            [--top=10] [--seed=N] [--threads=T] [--geojson=FILE]

Datasets are CSV check-ins (user_id,lat,lon[,venue_id]) or binary .pino
snapshots written by `generate`.

Algorithms: na, na-par, pin, pin-par, pin-grid, pin-hull, pin-vo,
pin-vo-star, brnn, range.
)";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int FailUnknownFlags(const FlagParser& flags,
                     const std::vector<std::string>& known,
                     std::ostream& err) {
  const auto unknown = flags.UnknownFlags(known);
  if (unknown.empty()) return 0;
  err << "unknown flag(s): ";
  for (size_t i = 0; i < unknown.size(); ++i) {
    err << (i > 0 ? ", " : "") << "--" << unknown[i];
  }
  err << "\n";
  return 2;
}

bool LoadAnyDataset(const std::string& path, CheckinDataset* dataset,
                    std::ostream& err) {
  if (EndsWith(path, ".pino")) {
    std::string error;
    if (!LoadDatasetBinaryFile(path, dataset, &error)) {
      err << "failed to load " << path << ": " << error << "\n";
      return false;
    }
    return true;
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    err << "cannot open " << path << "\n";
    return false;
  }
  size_t skipped = 0;
  *dataset = LoadCheckinsCsv(in, /*strict=*/false, &skipped);
  if (skipped > 0) err << "note: skipped " << skipped << " malformed rows\n";
  if (dataset->objects.empty()) {
    err << "no usable check-ins in " << path << "\n";
    return false;
  }
  return true;
}

int RunGenerate(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  if (int rc = FailUnknownFlags(flags, {"profile", "scale", "seed", "out"},
                                err)) {
    return rc;
  }
  const std::string profile = flags.GetString("profile", "foursquare");
  DatasetSpec spec;
  if (profile == "foursquare") {
    spec = DatasetSpec::Foursquare();
  } else if (profile == "gowalla") {
    spec = DatasetSpec::Gowalla();
  } else {
    err << "unknown profile '" << profile << "'\n";
    return 2;
  }
  const double scale = flags.GetDouble("scale", 1.0);
  if (scale <= 0.0 || scale > 1.0) {
    err << "--scale must be in (0, 1]\n";
    return 2;
  }
  spec = spec.Scaled(scale);
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const auto path = flags.GetString("out");
  if (!path.has_value()) {
    err << "--out is required\n";
    return 2;
  }

  out << "generating " << spec.name << " x" << scale << " (users "
      << spec.num_users << ", venues " << spec.num_venues << ")...\n";
  const CheckinDataset dataset = GenerateCheckinDataset(spec);
  if (EndsWith(*path, ".pino")) {
    SaveDatasetBinaryFile(dataset, *path);
  } else {
    std::ofstream file(*path);
    if (!file.is_open()) {
      err << "cannot create " << *path << "\n";
      return 1;
    }
    SaveCheckinsCsv(dataset, file);
  }
  out << "wrote " << dataset.TotalCheckins() << " check-ins to " << *path
      << "\n";
  return 0;
}

int RunStats(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  if (int rc = FailUnknownFlags(flags, {"in", "detailed"}, err)) return rc;
  const auto path = flags.GetString("in");
  if (!path.has_value()) {
    err << "--in is required\n";
    return 2;
  }
  CheckinDataset dataset;
  if (!LoadAnyDataset(*path, &dataset, err)) return 1;
  const DatasetStats stats = ComputeStats(dataset);
  TablePrinter table("Dataset statistics: " + dataset.spec.name,
                     {"metric", "value"});
  table.AddRow({"users", std::to_string(stats.user_count)});
  table.AddRow({"venues", std::to_string(stats.venue_count)});
  table.AddRow({"check-ins", std::to_string(stats.checkin_count)});
  table.AddRow({"avg check-ins/user",
                FormatDouble(stats.avg_checkins_per_user, 1)});
  table.AddRow({"min check-ins/user",
                std::to_string(stats.min_checkins_per_user)});
  table.AddRow({"max check-ins/user",
                std::to_string(stats.max_checkins_per_user)});
  table.AddRow({"extent (km)", FormatDouble(stats.extent_x_km, 2) + " x " +
                                   FormatDouble(stats.extent_y_km, 2)});
  table.AddRow({"avg object MBR (km)",
                FormatDouble(stats.avg_object_mbr_x_km, 2) + " x " +
                    FormatDouble(stats.avg_object_mbr_y_km, 2)});
  table.Print(out);

  if (flags.GetBool("detailed", false)) {
    SummaryStats per_user;
    SummaryStats diag_km;
    for (const MovingObject& o : dataset.objects) {
      per_user.Add(static_cast<double>(o.positions.size()));
      diag_km.Add(2.0 * o.ActivityMbr().HalfDiagonal() / 1000.0);
    }
    out << "\ncheck-ins per user: median " << FormatDouble(per_user.Median(), 1)
        << ", p90 " << FormatDouble(per_user.Quantile(0.9), 1) << ", p99 "
        << FormatDouble(per_user.Quantile(0.99), 1) << "\n";
    Histogram count_hist(0.0, per_user.Quantile(0.99) + 1.0, 10);
    for (const MovingObject& o : dataset.objects) {
      count_hist.Add(static_cast<double>(o.positions.size()));
    }
    out << count_hist.Render();
    out << "\nactivity-region diagonal (km): median "
        << FormatDouble(diag_km.Median(), 2) << ", p90 "
        << FormatDouble(diag_km.Quantile(0.9), 2) << "\n";
    Histogram diag_hist(0.0, std::max(1e-3, diag_km.Max()), 10);
    for (const MovingObject& o : dataset.objects) {
      diag_hist.Add(2.0 * o.ActivityMbr().HalfDiagonal() / 1000.0);
    }
    out << diag_hist.Render();
  }
  return 0;
}

int RunSolve(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  if (int rc = FailUnknownFlags(
          flags, {"in", "algorithm", "candidates", "tau", "rho", "lambda",
                  "unit-km", "top", "seed", "threads", "range-km",
                  "proportion", "geojson"},
          err)) {
    return rc;
  }
  const auto path = flags.GetString("in");
  if (!path.has_value()) {
    err << "--in is required\n";
    return 2;
  }
  CheckinDataset dataset;
  if (!LoadAnyDataset(*path, &dataset, err)) return 1;

  const auto num_candidates =
      static_cast<size_t>(flags.GetInt("candidates", 600));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const auto top = static_cast<size_t>(flags.GetInt("top", 10));
  const auto threads = static_cast<size_t>(flags.GetInt("threads", 0));

  SolverConfig config;
  config.tau = flags.GetDouble("tau", 0.7);
  config.pf = std::make_shared<PowerLawPF>(
      flags.GetDouble("rho", 0.9), flags.GetDouble("lambda", 1.0),
      /*d0=*/1.0, /*unit_meters=*/flags.GetDouble("unit-km", 0.1) * 1000.0);
  config.top_k = top;
  if (config.tau <= 0.0 || config.tau >= 1.0) {
    err << "--tau must be in (0, 1)\n";
    return 2;
  }

  CandidateSample sample;
  ProblemInstance instance;
  instance.objects = dataset.objects;
  const bool have_ground_truth = !dataset.venues.empty();
  if (have_ground_truth) {
    const size_t count = std::min(num_candidates, dataset.venues.size());
    sample = SampleCandidates(dataset, count, seed);
    instance.candidates = sample.points;
  } else {
    // No venue table (raw CSV without venue ids): sample candidate
    // coordinates from the check-in positions themselves.
    Rng rng(seed);
    std::vector<Point> pool;
    for (const MovingObject& o : dataset.objects) {
      for (const Point& p : o.positions) pool.push_back(p);
    }
    const size_t count = std::min(num_candidates, pool.size());
    for (size_t idx : rng.SampleWithoutReplacement(pool.size(), count)) {
      instance.candidates.push_back(pool[idx]);
    }
  }

  const auto issues = ValidateInstance(instance);
  if (!issues.empty()) err << FormatIssues(issues);
  if (!IsValid(issues)) {
    err << "instance is invalid; aborting\n";
    return 1;
  }

  const std::string algorithm = flags.GetString("algorithm", "pin-vo");
  std::unique_ptr<Solver> solver;
  if (algorithm == "na") {
    solver = std::make_unique<NaiveSolver>();
  } else if (algorithm == "na-par") {
    solver = std::make_unique<ParallelNaiveSolver>(threads);
  } else if (algorithm == "pin") {
    solver = std::make_unique<PinocchioSolver>();
  } else if (algorithm == "pin-par") {
    solver = std::make_unique<ParallelPinocchioSolver>(threads);
  } else if (algorithm == "pin-grid") {
    solver = std::make_unique<PinocchioGridSolver>();
  } else if (algorithm == "pin-hull") {
    solver = std::make_unique<PinocchioHullSolver>();
  } else if (algorithm == "pin-vo") {
    solver = std::make_unique<PinocchioVOSolver>();
  } else if (algorithm == "pin-vo-star") {
    solver = std::make_unique<PinocchioVOStarSolver>();
  } else if (algorithm == "brnn") {
    solver = std::make_unique<BrnnStarSolver>();
  } else if (algorithm == "range") {
    const double range_m = flags.GetDouble("range-km", 0.0) * 1000.0;
    solver = std::make_unique<RangeSolver>(
        flags.GetDouble("proportion", 0.5),
        range_m > 0.0 ? range_m : RangeSolver::DefaultRangeMeters(instance));
  } else {
    err << "unknown algorithm '" << algorithm << "'\n";
    return 2;
  }

  // Explicit prepare/solve split: the indexes are built once up front and
  // the solver runs against them, so the two costs print separately.
  const PreparedInstance prepared(instance, config);
  const PreparedBuildStats& build = prepared.build_stats();
  SolverResult result = solver->Solve(prepared);
  result.stats.prepare_seconds = build.build_seconds;
  result.stats.elapsed_seconds =
      result.stats.prepare_seconds + result.stats.solve_seconds;
  out << solver->Name() << " over " << instance.objects.size()
      << " objects and " << instance.candidates.size() << " candidates in "
      << FormatSeconds(result.stats.elapsed_seconds) << " ("
      << FormatTimingSplit(result.stats.prepare_seconds,
                           result.stats.solve_seconds)
      << ")\n";
  out << "prepared: A_2D " << prepared.num_objects() << " records ("
      << build.radius_memo_hits << " radius memo hits, "
      << build.radius_memo_entries << " distinct n), R-tree height "
      << build.rtree_height << " / " << build.rtree_nodes << " nodes\n";

  TablePrinter table(
      "Top-" + std::to_string(top) + " candidates",
      have_ground_truth
          ? std::vector<std::string>{"rank", "candidate", "influence",
                                     "actual check-ins"}
          : std::vector<std::string>{"rank", "candidate", "influence"});
  const auto ranking = result.TopK(top);
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::vector<std::string> row = {std::to_string(i + 1),
                                    "#" + std::to_string(ranking[i]),
                                    std::to_string(result.influence[ranking[i]])};
    if (have_ground_truth) {
      row.push_back(std::to_string(sample.ground_truth[ranking[i]]));
    }
    table.AddRow(row);
  }
  table.Print(out);

  if (const auto geojson_path = flags.GetString("geojson");
      geojson_path.has_value()) {
    std::ofstream file(*geojson_path);
    if (!file.is_open()) {
      err << "cannot create " << *geojson_path << "\n";
      return 1;
    }
    GeoJsonOptions geo_options;
    geo_options.top_k = top;
    WriteResultGeoJson(instance, result, Projection(dataset.spec.origin),
                       file, geo_options);
    out << "wrote GeoJSON to " << *geojson_path << "\n";
  }

  if (result.stats.PairsPruned() > 0) {
    out << "pruning: " << result.stats.pairs_pruned_by_ia
        << " pairs certified by influence arcs, "
        << result.stats.pairs_pruned_by_nib
        << " excluded by the non-influence boundary, "
        << result.stats.pairs_validated << " validated\n";
  }
  return 0;
}

int RunSelect(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  if (int rc = FailUnknownFlags(
          flags, {"in", "k", "candidates", "tau", "rho", "lambda", "unit-km",
                  "seed"},
          err)) {
    return rc;
  }
  const auto path = flags.GetString("in");
  if (!path.has_value()) {
    err << "--in is required\n";
    return 2;
  }
  CheckinDataset dataset;
  if (!LoadAnyDataset(*path, &dataset, err)) return 1;

  const auto k = static_cast<size_t>(flags.GetInt("k", 3));
  if (k == 0) {
    err << "--k must be positive\n";
    return 2;
  }
  const auto num_candidates =
      static_cast<size_t>(flags.GetInt("candidates", 600));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  SolverConfig config;
  config.tau = flags.GetDouble("tau", 0.7);
  config.pf = std::make_shared<PowerLawPF>(
      flags.GetDouble("rho", 0.9), flags.GetDouble("lambda", 1.0),
      /*d0=*/1.0, /*unit_meters=*/flags.GetDouble("unit-km", 0.1) * 1000.0);
  if (config.tau <= 0.0 || config.tau >= 1.0) {
    err << "--tau must be in (0, 1)\n";
    return 2;
  }

  ProblemInstance instance;
  instance.objects = dataset.objects;
  const size_t count = std::min(num_candidates, dataset.venues.size());
  if (count > 0) {
    instance.candidates = SampleCandidates(dataset, count, seed).points;
  } else {
    err << "dataset has no venue table; select requires one\n";
    return 1;
  }

  const MultiFacilityResult result = SelectFacilities(instance, k, config);
  TablePrinter table("Greedy facility set (union influence)",
                     {"step", "facility", "union coverage", "marginal gain",
                      "coverage %"});
  int64_t previous = 0;
  for (size_t i = 0; i < result.selected.size(); ++i) {
    table.AddRow(
        {std::to_string(i + 1), "#" + std::to_string(result.selected[i]),
         std::to_string(result.coverage[i]),
         std::to_string(result.coverage[i] - previous),
         FormatDouble(100.0 * static_cast<double>(result.coverage[i]) /
                          std::max<double>(1.0, static_cast<double>(
                                                    instance.objects.size())),
                      1)});
    previous = result.coverage[i];
  }
  table.Print(out);
  out << "selected " << result.selected.size() << " facilities in "
      << FormatSeconds(result.elapsed_seconds) << " ("
      << result.gain_evaluations << " gain evaluations)\n";
  return 0;
}

int RunDiscretize(const FlagParser& flags, std::ostream& out,
                  std::ostream& err) {
  if (int rc = FailUnknownFlags(flags, {"in", "out", "interval-s"}, err)) {
    return rc;
  }
  const auto in_path = flags.GetString("in");
  const auto out_path = flags.GetString("out");
  if (!in_path.has_value() || !out_path.has_value()) {
    err << "--in and --out are required\n";
    return 2;
  }
  const double interval = flags.GetDouble("interval-s", 1800.0);
  if (interval <= 0.0) {
    err << "--interval-s must be positive\n";
    return 2;
  }
  std::ifstream in(*in_path);
  if (!in.is_open()) {
    err << "cannot open " << *in_path << "\n";
    return 1;
  }
  size_t skipped = 0;
  const TrajectoryDataset trajectories =
      LoadTrajectoriesCsv(in, /*strict=*/false, &skipped);
  if (skipped > 0) err << "note: skipped " << skipped << " malformed rows\n";
  if (trajectories.trajectories.empty()) {
    err << "no usable trajectories in " << *in_path << "\n";
    return 1;
  }

  // Resample per Section 3.1 and write as check-ins (user,lat,lon) that
  // `solve`/`stats` consume.
  CheckinDataset dataset;
  dataset.spec.name = "discretized";
  dataset.spec.origin = trajectories.origin;
  dataset.objects = DiscretizeTrajectories(trajectories, interval);
  dataset.spec.num_users = dataset.objects.size();
  std::ofstream out_file(*out_path);
  if (!out_file.is_open()) {
    err << "cannot create " << *out_path << "\n";
    return 1;
  }
  SaveCheckinsCsv(dataset, out_file);
  out << "discretized " << trajectories.trajectories.size()
      << " trajectories at " << interval << " s into "
      << dataset.TotalCheckins() << " positions -> " << *out_path << "\n";
  return 0;
}

int RunExplain(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  if (int rc = FailUnknownFlags(
          flags, {"in", "candidate", "candidates", "tau", "rho", "lambda",
                  "unit-km", "seed", "top"},
          err)) {
    return rc;
  }
  const auto path = flags.GetString("in");
  if (!path.has_value()) {
    err << "--in is required\n";
    return 2;
  }
  CheckinDataset dataset;
  if (!LoadAnyDataset(*path, &dataset, err)) return 1;

  const auto num_candidates =
      static_cast<size_t>(flags.GetInt("candidates", 600));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const auto candidate_index =
      static_cast<size_t>(flags.GetInt("candidate", 0));
  const auto top = static_cast<size_t>(flags.GetInt("top", 10));

  SolverConfig config;
  config.tau = flags.GetDouble("tau", 0.7);
  config.pf = std::make_shared<PowerLawPF>(
      flags.GetDouble("rho", 0.9), flags.GetDouble("lambda", 1.0),
      /*d0=*/1.0, /*unit_meters=*/flags.GetDouble("unit-km", 0.1) * 1000.0);
  if (config.tau <= 0.0 || config.tau >= 1.0) {
    err << "--tau must be in (0, 1)\n";
    return 2;
  }

  const size_t count = std::min(num_candidates, dataset.venues.size());
  if (count == 0) {
    err << "dataset has no venue table; explain requires one\n";
    return 1;
  }
  const CandidateSample sample = SampleCandidates(dataset, count, seed);
  if (candidate_index >= sample.points.size()) {
    err << "--candidate out of range (sampled " << sample.points.size()
        << " candidates)\n";
    return 2;
  }

  const Point c = sample.points[candidate_index];
  const InfluenceExplanation explanation =
      ExplainInfluence(dataset.objects, c, config);
  out << "candidate #" << candidate_index << " influences "
      << explanation.influence << " of " << dataset.objects.size()
      << " objects (tau = " << config.tau << ")\n";
  out << "decided geometrically: " << explanation.decided_by_ia
      << " by influence arcs, " << explanation.decided_by_nib
      << " excluded by the non-influence boundary\n";

  TablePrinter table("Most strongly influenced objects",
                     {"object", "Pr_c(O)", "positions in minMaxRadius"});
  const size_t rows = std::min(top, explanation.influenced.size());
  for (size_t i = 0; i < rows; ++i) {
    const InfluencedObject& o = explanation.influenced[i];
    table.AddRow({std::to_string(o.object_id),
                  FormatDouble(o.probability, 4),
                  std::to_string(o.positions_in_radius)});
  }
  table.Print(out);
  return 0;
}

}  // namespace

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  const FlagParser flags(rest);
  if (flags.Has("help")) {
    out << kUsage;
    return 0;
  }
  if (!flags.errors().empty()) {
    for (const std::string& e : flags.errors()) err << e << "\n";
    return 2;
  }
  if (command == "generate") return RunGenerate(flags, out, err);
  if (command == "stats") return RunStats(flags, out, err);
  if (command == "solve") return RunSolve(flags, out, err);
  if (command == "explain") return RunExplain(flags, out, err);
  if (command == "discretize") return RunDiscretize(flags, out, err);
  if (command == "select") return RunSelect(flags, out, err);
  err << "unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace cli
}  // namespace pinocchio
