#include "parallel/parallel_solvers.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "core/pinocchio_vo_solver.h"
#include "core/prepared_instance.h"
#include "core/prune_pipeline.h"
#include "parallel/morsel_scheduler.h"
#include "parallel/parallel_query.h"
#include "prob/influence_kernel.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace pinocchio {
namespace {

/// Candidates per NA morsel: each candidate costs a full position scan, so
/// even small ranges amortise the claim CAS while stealing stays fine.
constexpr size_t kNaiveCandidatesPerMorsel = 8;

/// Morsels dealt per worker; >1 so drained workers find work to steal.
constexpr size_t kMorselsPerWorker = 4;

/// Per-worker accumulator, padded to its own cache lines so the hot
/// per-pair counter increments of one worker never invalidate another's.
struct alignas(128) WorkerAccumulator {
  std::vector<int64_t> influence;
  SolverStats stats;
  int64_t positions_scanned = 0;
};

}  // namespace

ParallelNaiveSolver::ParallelNaiveSolver(size_t num_threads)
    : num_threads_(MorselScheduler(num_threads).num_threads()) {}

std::string ParallelNaiveSolver::Name() const {
  std::ostringstream os;
  os << "NA-P" << num_threads_;
  return os.str();
}

SolverResult ParallelNaiveSolver::Solve(const PreparedInstance& prepared) const {
  Stopwatch watch;
  SolverResult result;
  const size_t m = prepared.num_candidates();
  result.influence.assign(m, 0);
  result.influence_exact = true;

  const InfluenceKernel kernel(prepared.pf(), prepared.tau());
  const double tau = prepared.tau();
  const ObjectStore& store = prepared.store();

  const MorselScheduler scheduler(num_threads_);
  const std::vector<Morsel> morsels = PlanUniformMorsels(
      m, kNaiveCandidatesPerMorsel, scheduler.num_threads() * kMorselsPerWorker);
  std::vector<WorkerAccumulator> workers(scheduler.num_threads());
  scheduler.Run(morsels, [&](size_t w, size_t, const Morsel& morsel) {
    int64_t local_positions = 0;
    for (uint32_t j = morsel.first_record; j < morsel.last_record; ++j) {
      const Point& c = prepared.candidate(j);
      int64_t inf = 0;
      for (const ObjectRecord& rec : store.records()) {
        local_positions += static_cast<int64_t>(rec.position_count);
        if (kernel.Probability(c, store.positions(rec)) >= tau) ++inf;
      }
      result.influence[j] = inf;  // exclusive candidate range: no sync
    }
    workers[w].positions_scanned += local_positions;
  });

  for (const WorkerAccumulator& w : workers) {
    result.stats.positions_scanned += w.positions_scanned;
  }
  result.stats.pairs_validated =
      static_cast<int64_t>(m) * static_cast<int64_t>(store.size());
  internal::FinalizeResultFromInfluence(&result);
  internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
  return result;
}

ParallelPinocchioSolver::ParallelPinocchioSolver(size_t num_threads)
    : num_threads_(MorselScheduler(num_threads).num_threads()) {}

std::string ParallelPinocchioSolver::Name() const {
  std::ostringstream os;
  os << "PIN-P" << num_threads_;
  return os.str();
}

SolverResult ParallelPinocchioSolver::Solve(
    const PreparedInstance& prepared) const {
  Stopwatch watch;
  SolverResult result;
  const size_t m = prepared.num_candidates();
  result.influence.assign(m, 0);
  result.influence_exact = true;
  if (m == 0) {
    internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
    return result;
  }

  // One kernel shared by all workers: the SIMD tier is resolved once at
  // construction, so every thread batches through the same code path.
  const InfluenceKernel kernel(prepared.pf(), prepared.tau());
  const ObjectStore& store = prepared.store();
  const RTree& rtree = prepared.candidate_rtree();

  const MorselScheduler scheduler(num_threads_);
  MorselPlanOptions plan;
  plan.min_morsels = scheduler.num_threads() * kMorselsPerWorker;
  const std::vector<Morsel> morsels = PlanMorsels(store, plan);

  // Workers run the shared pipeline over stolen morsels into private
  // accumulators; the merges below are associative integer sums, so the
  // totals are bit-identical to the sequential solver regardless of which
  // worker executed which morsel.
  std::vector<WorkerAccumulator> workers(scheduler.num_threads());
  for (WorkerAccumulator& w : workers) w.influence.assign(m, 0);
  scheduler.Run(morsels, [&](size_t w, size_t, const Morsel& morsel) {
    PruneAndValidate(rtree, store, kernel, morsel.first_record,
                     morsel.last_record, workers[w].influence,
                     &workers[w].stats);
  });

  for (const WorkerAccumulator& w : workers) {
    for (size_t j = 0; j < m; ++j) result.influence[j] += w.influence[j];
    result.stats.pairs_pruned_by_ia += w.stats.pairs_pruned_by_ia;
    result.stats.pairs_pruned_by_nib += w.stats.pairs_pruned_by_nib;
    result.stats.pairs_validated += w.stats.pairs_validated;
    result.stats.positions_scanned += w.stats.positions_scanned;
    result.stats.early_stops += w.stats.early_stops;
  }

  internal::FinalizeResultFromInfluence(&result);
  internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
  return result;
}

ParallelPinocchioVOSolver::ParallelPinocchioVOSolver(size_t num_threads)
    : num_threads_(MorselScheduler(num_threads).num_threads()) {}

std::string ParallelPinocchioVOSolver::Name() const {
  std::ostringstream os;
  os << "PIN-VO-P" << num_threads_;
  return os.str();
}

SolverResult ParallelPinocchioVOSolver::Solve(
    const PreparedInstance& prepared) const {
  const SolverConfig& config = prepared.config();
  PINO_CHECK_GT(config.top_k, 0u);
  Stopwatch watch;
  SolverResult result;
  const size_t m = prepared.num_candidates();
  result.influence.assign(m, 0);
  result.influence_exact = false;
  if (m == 0) {
    internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
    return result;
  }

  const InfluenceKernel kernel(prepared.pf(), prepared.tau());
  const MorselScheduler scheduler(num_threads_);

  // -------------------------------------------------- phase 1: prune
  // Morsel-parallel bracket build (parallel/parallel_query.cc): the CSR is
  // byte-identical to the sequential builder's.
  query::CandidateBrackets brackets = query::BuildCandidateBracketsParallel(
      prepared, kernel, scheduler, &result.stats);

  // -------------------------------------------------- phase 2: order
  // Per-shard heapsort + tournament merge under query::OrderBefore,
  // equal to the sequential sorted order.
  const std::vector<uint32_t> order =
      query::BoundDominationOrderParallel(brackets, scheduler);

  // -------------------------------------------------- phase 3: validate
  const auto verification_set = [&](uint32_t j) -> std::span<const uint32_t> {
    return brackets.VerificationSet(j);
  };
  vo_internal::ValidateBoundOrdered(prepared, kernel, order, verification_set,
                                    config.top_k, &brackets.min_inf,
                                    &brackets.max_inf, &result);

  result.influence = std::move(brackets.min_inf);
  internal::FinalizeResultFromInfluence(&result);
  internal::FinishSolveTiming(&result.stats, watch.ElapsedSeconds());
  return result;
}

}  // namespace pinocchio
