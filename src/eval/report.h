// Report formatting for the benchmark harnesses: aligned ASCII tables in
// the style of the paper's tables/figure series, plus the benchmark scale
// knob shared by all bench binaries.

#ifndef PINOCCHIO_EVAL_REPORT_H_
#define PINOCCHIO_EVAL_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/solver.h"

namespace pinocchio {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; `headers` defines the column count.
  TablePrinter(std::string title, std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the title, header rule and all rows to `out`.
  void Print(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds adaptively ("873 us", "12.3 ms", "4.57 s").
std::string FormatSeconds(double seconds);

/// Formats a prepare/solve time split as "prep 1.2 ms + solve 42 ms"; when
/// prepare is zero (an already-prepared instance) only the solve part is
/// printed.
std::string FormatTimingSplit(double prepare_seconds, double solve_seconds);

/// One JSON-lines record of a solver run, with the timing split as separate
/// fields. The bench harnesses append these to $PINOCCHIO_BENCH_JSON so
/// plots can consume machine-readable output next to the ASCII tables.
std::string SolverRunJsonLine(const std::string& bench,
                              const std::string& dataset,
                              const std::string& algorithm, size_t objects,
                              size_t candidates, const SolverStats& stats);

/// Reads the PINOCCHIO_BENCH_SCALE environment variable (a factor in
/// (0, 1]) used to shrink the Table-2-scale datasets for quick runs;
/// defaults to `default_scale` when unset or unparsable.
double BenchScaleFromEnv(double default_scale = 1.0);

/// Reads PINOCCHIO_BENCH_SEED (uint64) for dataset/candidate sampling;
/// defaults to `default_seed`.
uint64_t BenchSeedFromEnv(uint64_t default_seed = 7);

}  // namespace pinocchio

#endif  // PINOCCHIO_EVAL_REPORT_H_
