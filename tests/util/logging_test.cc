#include "util/logging.h"

#include <gtest/gtest.h>

namespace pinocchio {
namespace {

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARNING");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kFatal), "FATAL");
}

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, FilteredMessageDoesNotEvaluateStream) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  PINO_LOG(DEBUG) << expensive();
  EXPECT_EQ(evaluations, 0);
  PINO_LOG(ERROR) << "expected one error line in test output: "
                  << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(before);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ PINO_CHECK(1 == 2) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOpMacros) {
  PINO_CHECK_EQ(2, 2);
  PINO_CHECK_LT(1, 2);
  PINO_CHECK_GE(2, 2);
  EXPECT_DEATH({ PINO_CHECK_EQ(1, 2); }, "Check failed");
  EXPECT_DEATH({ PINO_CHECK_GT(1, 2); }, "Check failed");
}

}  // namespace
}  // namespace pinocchio
