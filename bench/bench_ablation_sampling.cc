// Reproduces the Section 6.2 discussion on the number of positions per
// object: "using 24-48 positions, we can achieve a tradeoff between
// accuracy and cost". A fleet of periodic commuter trajectories is
// discretised at sampling intervals from 6 hours down to 7.5 minutes; for
// each interval we report the solve cost, the selected optimum's true
// influence under the finest discretisation (the accuracy proxy), and the
// distance between the selected and the reference optimum.
//
// Expected shape: accuracy saturates around 24-48 positions per day while
// cost keeps growing linearly with the position count.

#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "traj/generators.h"
#include "util/random.h"

namespace pinocchio {
namespace bench {
namespace {

void Main() {
  const BenchContext ctx = BenchContext::FromEnv();
  ctx.Announce("ablation_sampling");

  // One day of commuting for a fleet over a city-sized extent.
  const Mbr extent(0, 0, 39220, 27030);
  CommuterSpec base;
  base.days = 1;
  base.sample_interval_s = 450.0;  // 7.5 min = the finest level
  base.leisure = {{20000, 20000}, {8000, 22000}, {30000, 6000}};
  Rng rng(ctx.seed * 7 + 1);
  const size_t fleet_size =
      std::max<size_t>(200, static_cast<size_t>(2000 * ctx.scale));
  const auto fleet = GenerateCommuterFleet(base, extent, fleet_size, rng);

  // Candidate sites: uniform over the extent.
  std::vector<Point> candidates;
  const size_t m = ScaledCandidates(ctx, kDefaultCandidates);
  for (size_t j = 0; j < m; ++j) {
    candidates.push_back({rng.Uniform(0, extent.max_x()),
                          rng.Uniform(0, extent.max_y())});
  }

  const SolverConfig config = DefaultConfig();

  // Reference: the finest discretisation.
  const auto build_instance = [&](double interval_s) {
    ProblemInstance instance;
    instance.candidates = candidates;
    for (size_t i = 0; i < fleet.size(); ++i) {
      instance.objects.push_back(
          fleet[i].Resample(interval_s).ToMovingObject(
              static_cast<uint32_t>(i)));
    }
    return instance;
  };
  const ProblemInstance reference_instance = build_instance(450.0);
  const SolverResult reference =
      PinocchioVOSolver().Solve(reference_instance, config);
  // Exact influences at the finest level, for scoring coarser choices.
  const SolverResult reference_exact =
      PinocchioSolver().Solve(reference_instance, config);

  TablePrinter table(
      "Sampling-interval ablation (commuter fleet, 1 day)",
      {"interval", "positions/object", "PIN-VO", "chosen vs best influence",
       "optimum drift (km)"});
  for (double hours : {6.0, 3.0, 2.0, 1.0, 0.5, 0.25, 0.125}) {
    const double interval_s = hours * 3600.0;
    const ProblemInstance instance = build_instance(interval_s);
    const SolverResult result = PinocchioVOSolver().Solve(instance, config);
    // Score the chosen site by its influence under the reference
    // discretisation.
    const int64_t achieved = reference_exact.influence[result.best_candidate];
    std::ostringstream interval_label;
    if (hours >= 1.0) {
      interval_label << hours << " h";
    } else {
      interval_label << hours * 60 << " min";
    }
    table.AddRow(
        {interval_label.str(),
         std::to_string(instance.objects.front().positions.size()),
         FormatSeconds(result.stats.elapsed_seconds),
         std::to_string(achieved) + " / " +
             std::to_string(reference.best_influence),
         FormatDouble(
             Distance(candidates[result.best_candidate],
                      candidates[reference.best_candidate]) /
                 1000.0,
             2)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace pinocchio

int main() {
  pinocchio::bench::Main();
  return 0;
}
