#include "prob/alternative_pfs.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace pinocchio {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------- LogsigPF

LogsigPF::LogsigPF(double rho, double scale_meters)
    : rho_(rho), scale_meters_(scale_meters) {
  PINO_CHECK_GT(rho, 0.0);
  PINO_CHECK_LE(rho, 1.0);
  PINO_CHECK_GT(scale_meters, 0.0);
}

double LogsigPF::operator()(double dist_meters) const {
  PINO_CHECK_GE(dist_meters, 0.0);
  return rho_ / (1.0 + std::exp(dist_meters / scale_meters_));
}

double LogsigPF::Inverse(double prob) const {
  if (prob <= 0.0) return kInf;
  if (prob >= rho_ / 2.0) return 0.0;  // PF(0) = rho/2
  return scale_meters_ * std::log(rho_ / prob - 1.0);
}

std::string LogsigPF::Name() const {
  std::ostringstream os;
  os << "Logsig(rho=" << rho_ << ")";
  return os.str();
}

// ---------------------------------------------------------------- ConvexPF

ConvexPF::ConvexPF(double rho, double range_meters)
    : rho_(rho), range_meters_(range_meters) {
  PINO_CHECK_GT(rho, 0.0);
  PINO_CHECK_LE(rho, 1.0);
  PINO_CHECK_GT(range_meters, 0.0);
}

double ConvexPF::operator()(double dist_meters) const {
  PINO_CHECK_GE(dist_meters, 0.0);
  if (dist_meters >= range_meters_) return 0.0;
  const double t = 1.0 - dist_meters / range_meters_;
  return rho_ * t * t;
}

double ConvexPF::Inverse(double prob) const {
  if (prob <= 0.0) return kInf;
  if (prob >= rho_) return 0.0;
  return range_meters_ * (1.0 - std::sqrt(prob / rho_));
}

std::string ConvexPF::Name() const {
  std::ostringstream os;
  os << "Convex(rho=" << rho_ << ")";
  return os.str();
}

// --------------------------------------------------------------- ConcavePF

ConcavePF::ConcavePF(double rho, double range_meters)
    : rho_(rho), range_meters_(range_meters) {
  PINO_CHECK_GT(rho, 0.0);
  PINO_CHECK_LE(rho, 1.0);
  PINO_CHECK_GT(range_meters, 0.0);
}

double ConcavePF::operator()(double dist_meters) const {
  PINO_CHECK_GE(dist_meters, 0.0);
  if (dist_meters >= range_meters_) return 0.0;
  const double t = dist_meters / range_meters_;
  return rho_ * (1.0 - t * t);
}

double ConcavePF::Inverse(double prob) const {
  if (prob <= 0.0) return kInf;
  if (prob >= rho_) return 0.0;
  return range_meters_ * std::sqrt(1.0 - prob / rho_);
}

std::string ConcavePF::Name() const {
  std::ostringstream os;
  os << "Concave(rho=" << rho_ << ")";
  return os.str();
}

// ---------------------------------------------------------------- LinearPF

LinearPF::LinearPF(double rho, double range_meters)
    : rho_(rho), range_meters_(range_meters) {
  PINO_CHECK_GT(rho, 0.0);
  PINO_CHECK_LE(rho, 1.0);
  PINO_CHECK_GT(range_meters, 0.0);
}

double LinearPF::operator()(double dist_meters) const {
  PINO_CHECK_GE(dist_meters, 0.0);
  if (dist_meters >= range_meters_) return 0.0;
  return rho_ * (1.0 - dist_meters / range_meters_);
}

double LinearPF::Inverse(double prob) const {
  if (prob <= 0.0) return kInf;
  if (prob >= rho_) return 0.0;
  return range_meters_ * (1.0 - prob / rho_);
}

std::string LinearPF::Name() const {
  std::ostringstream os;
  os << "Linear(rho=" << rho_ << ")";
  return os.str();
}

}  // namespace pinocchio
