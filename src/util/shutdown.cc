#include "util/shutdown.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>

namespace pinocchio {
namespace {

std::atomic<bool> g_requested{false};
std::atomic<bool> g_installed{false};
int g_pipe[2] = {-1, -1};

void WakePipe() {
  if (g_pipe[1] >= 0) {
    const uint8_t byte = 1;
    // Best effort; a full pipe already wakes every poller.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}

extern "C" void ShutdownSignalHandler(int signum) {
  if (g_requested.exchange(true)) {
    // Second signal: the drain is taking too long for the operator —
    // restore the default disposition and let the re-raise terminate.
    ::signal(signum, SIG_DFL);
    ::raise(signum);
    return;
  }
  WakePipe();
}

}  // namespace

void InstallShutdownHandlers() {
  if (g_installed.exchange(true)) return;
  // O_NONBLOCK on both ends: the handler must never block, and drains
  // in ResetShutdownForTests() must not spin.
  if (::pipe2(g_pipe, O_CLOEXEC | O_NONBLOCK) != 0) {
    g_pipe[0] = g_pipe[1] = -1;
  }
  struct sigaction action = {};
  action.sa_handler = &ShutdownSignalHandler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked syscalls return EINTR
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() {
  return g_requested.load(std::memory_order_relaxed);
}

void RequestShutdown() {
  if (!g_requested.exchange(true)) WakePipe();
}

int ShutdownWakeFd() { return g_pipe[0]; }

void ResetShutdownForTests() {
  g_requested.store(false);
  if (g_pipe[0] >= 0) {
    uint8_t buffer[64];
    while (::read(g_pipe[0], buffer, sizeof(buffer)) > 0) {
    }
  }
}

}  // namespace pinocchio
