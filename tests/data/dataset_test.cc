#include "data/checkin_dataset.h"

#include <gtest/gtest.h>

namespace pinocchio {
namespace {

DatasetSpec SmallSpec(uint64_t seed = 7) {
  DatasetSpec spec;
  spec.name = "small";
  spec.seed = seed;
  spec.num_users = 150;
  spec.num_venues = 300;
  spec.target_checkins = 6000;
  spec.min_checkins_per_user = 2;
  spec.max_checkins_per_user = 400;
  return spec;
}

// Per-user counts are heavy-tailed, so totals need a larger population
// before the sample mean stabilises.
DatasetSpec MediumSpec(uint64_t seed = 7) {
  DatasetSpec spec = SmallSpec(seed);
  spec.name = "medium";
  spec.num_users = 900;
  spec.num_venues = 600;
  spec.target_checkins = 36000;
  return spec;
}

TEST(DatasetTest, CardinalitiesMatchSpec) {
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  EXPECT_EQ(dataset.objects.size(), 150u);
  EXPECT_EQ(dataset.venues.size(), 300u);
  EXPECT_EQ(dataset.venue_checkins.size(), 300u);
}

TEST(DatasetTest, DeterministicInSeed) {
  const CheckinDataset a = GenerateCheckinDataset(SmallSpec(99));
  const CheckinDataset b = GenerateCheckinDataset(SmallSpec(99));
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (size_t k = 0; k < a.objects.size(); ++k) {
    ASSERT_EQ(a.objects[k].positions.size(), b.objects[k].positions.size());
    for (size_t i = 0; i < a.objects[k].positions.size(); ++i) {
      EXPECT_EQ(a.objects[k].positions[i], b.objects[k].positions[i]);
    }
  }
  EXPECT_EQ(a.venue_checkins, b.venue_checkins);
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  const CheckinDataset a = GenerateCheckinDataset(SmallSpec(1));
  const CheckinDataset b = GenerateCheckinDataset(SmallSpec(2));
  EXPECT_NE(a.venue_checkins, b.venue_checkins);
}

TEST(DatasetTest, CheckinCountsConsistent) {
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  int64_t venue_total = 0;
  for (int64_t c : dataset.venue_checkins) {
    EXPECT_GE(c, 0);
    venue_total += c;
  }
  EXPECT_EQ(static_cast<size_t>(venue_total), dataset.TotalCheckins());
}

TEST(DatasetTest, TotalCheckinsNearTarget) {
  const CheckinDataset dataset = GenerateCheckinDataset(MediumSpec());
  const double target = 36000.0;
  EXPECT_NEAR(static_cast<double>(dataset.TotalCheckins()), target,
              0.25 * target);
}

TEST(DatasetTest, PerUserBoundsRespected) {
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  for (const MovingObject& o : dataset.objects) {
    EXPECT_GE(o.positions.size(), 2u);
    EXPECT_LE(o.positions.size(), 400u);
  }
}

TEST(DatasetTest, PositionsWithinExtent) {
  const DatasetSpec spec = SmallSpec();
  const CheckinDataset dataset = GenerateCheckinDataset(spec);
  for (const MovingObject& o : dataset.objects) {
    for (const Point& p : o.positions) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, spec.extent_x_km * 1000.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, spec.extent_y_km * 1000.0);
    }
  }
}

TEST(DatasetTest, PositionsSnapToVenues) {
  // Every check-in position must coincide with some venue coordinate.
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  std::set<std::pair<double, double>> venue_set;
  for (const Point& v : dataset.venues) venue_set.insert({v.x, v.y});
  for (const MovingObject& o : dataset.objects) {
    for (const Point& p : o.positions) {
      EXPECT_TRUE(venue_set.count({p.x, p.y}) > 0);
    }
  }
}

TEST(DatasetTest, CheckinCountDistributionIsSkewed) {
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  const DatasetStats stats = ComputeStats(dataset);
  // Power-law counts: the max should far exceed the average.
  EXPECT_GT(static_cast<double>(stats.max_checkins_per_user),
            3.0 * stats.avg_checkins_per_user);
}

TEST(DatasetTest, ActivityRegionsCoverLargeFractionOfExtent) {
  // Section 4.3: an average object covers roughly half of each dimension.
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  const DatasetStats stats = ComputeStats(dataset);
  EXPECT_GT(stats.avg_object_mbr_x_km, 0.25 * stats.extent_x_km);
  EXPECT_GT(stats.avg_object_mbr_y_km, 0.25 * stats.extent_y_km);
  EXPECT_LT(stats.avg_object_mbr_x_km, 0.95 * stats.extent_x_km);
}

TEST(DatasetTest, FoursquareSpecStats) {
  // Scaled-down Foursquare keeps the shape of Table 2.
  const DatasetSpec spec = DatasetSpec::Foursquare().Scaled(0.05);
  const CheckinDataset dataset = GenerateCheckinDataset(spec);
  const DatasetStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.user_count, spec.num_users);
  EXPECT_EQ(stats.venue_count, spec.num_venues);
  const double target_avg = static_cast<double>(spec.target_checkins) /
                            static_cast<double>(spec.num_users);
  EXPECT_NEAR(stats.avg_checkins_per_user, target_avg, 0.35 * target_avg);
  EXPECT_LE(stats.extent_x_km, spec.extent_x_km + 1e-9);
  EXPECT_LE(stats.extent_y_km, spec.extent_y_km + 1e-9);
}

TEST(DatasetTest, GowallaSpecHasMoreUsersFewerCheckinsPerUser) {
  const DatasetSpec f = DatasetSpec::Foursquare();
  const DatasetSpec g = DatasetSpec::Gowalla();
  EXPECT_GT(g.num_users, f.num_users);
  const double f_avg = static_cast<double>(f.target_checkins) / f.num_users;
  const double g_avg = static_cast<double>(g.target_checkins) / g.num_users;
  EXPECT_LT(g_avg, f_avg);  // Table 2: 37 vs 72
}

TEST(DatasetTest, ScaledSpecShrinksCardinalities) {
  const DatasetSpec full = DatasetSpec::Gowalla();
  const DatasetSpec half = full.Scaled(0.5);
  EXPECT_NEAR(static_cast<double>(half.num_users),
              0.5 * static_cast<double>(full.num_users), 1.0);
  EXPECT_NEAR(static_cast<double>(half.num_venues),
              0.5 * static_cast<double>(full.num_venues), 1.0);
  // Minimums enforced at extreme scales.
  const DatasetSpec tiny = full.Scaled(1e-9);
  EXPECT_GE(tiny.num_users, 10u);
  EXPECT_GE(tiny.num_venues, 20u);
}

TEST(CalibratePowerLawAlphaTest, HitsTargetMean) {
  // Achievable targets lie between the alpha->8 mean (~lo) and the
  // alpha->1 limit (hi - lo) / ln(hi / lo) ~= 130.4 for [2, 780].
  for (double target : {5.0, 10.0, 37.0, 72.0, 120.0}) {
    const double alpha = CalibratePowerLawAlpha(2.0, 780.0, target);
    // Verify the analytic mean at the calibrated alpha.
    const double a1 = 1.0 - alpha, a2 = 2.0 - alpha;
    const double mean = ((std::pow(780.0, a2) - std::pow(2.0, a2)) / a2) /
                        ((std::pow(780.0, a1) - std::pow(2.0, a1)) / a1);
    EXPECT_NEAR(mean, target, 0.01 * target);
  }
}

TEST(CalibratePowerLawAlphaTest, ClampsUnreachableTargets) {
  // Above the alpha->1 limit the calibration saturates at the heavy-tail
  // end rather than diverging.
  const double alpha = CalibratePowerLawAlpha(2.0, 780.0, 300.0);
  EXPECT_LE(alpha, 1.001);
}

TEST(SampleCandidatesTest, DistinctVenuesAndGroundTruth) {
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  const CandidateSample sample = SampleCandidates(dataset, 50, 11);
  EXPECT_EQ(sample.points.size(), 50u);
  EXPECT_EQ(sample.ground_truth.size(), 50u);
  std::set<size_t> distinct(sample.venue_indices.begin(),
                            sample.venue_indices.end());
  EXPECT_EQ(distinct.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sample.points[i], dataset.venues[sample.venue_indices[i]]);
    EXPECT_EQ(sample.ground_truth[i],
              dataset.venue_checkins[sample.venue_indices[i]]);
  }
}

TEST(SampleCandidatesTest, DeterministicInSeed) {
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  const CandidateSample a = SampleCandidates(dataset, 30, 5);
  const CandidateSample b = SampleCandidates(dataset, 30, 5);
  EXPECT_EQ(a.venue_indices, b.venue_indices);
  const CandidateSample c = SampleCandidates(dataset, 30, 6);
  EXPECT_NE(a.venue_indices, c.venue_indices);
}

TEST(MakeInstanceTest, BuildsConsistentInstance) {
  const CheckinDataset dataset = GenerateCheckinDataset(SmallSpec());
  const ProblemInstance instance = MakeInstance(dataset, 40, 3);
  EXPECT_EQ(instance.objects.size(), dataset.objects.size());
  EXPECT_EQ(instance.candidates.size(), 40u);
  EXPECT_EQ(instance.TotalPositions(), dataset.TotalCheckins());
}

}  // namespace
}  // namespace pinocchio
