// Wildlife monitoring-station placement.
//
// A reserve wants to place a telemetry station where it can detect the
// most animals. Each animal's movement is a trajectory sampled at regular
// intervals (random-waypoint movement between seasonal ranges); a station
// detects an animal at distance d with a linearly decaying probability up
// to its 3 km detection range, and an animal counts as "covered" if the
// cumulative detection probability across its sampled positions reaches
// 0.8. The example also demonstrates the incremental API: a seasonal
// migration arrives after the initial placement and the ranking updates
// without re-solving.
//
// Run:  ./wildlife_monitoring

#include <cmath>
#include <iostream>
#include <memory>

#include "core/incremental.h"
#include "core/pinocchio_vo_solver.h"
#include "eval/report.h"
#include "util/string_utils.h"
#include "prob/alternative_pfs.h"
#include "util/random.h"

using namespace pinocchio;

namespace {

// Random-waypoint trajectory between a herd's seasonal ranges.
MovingObject MakeAnimal(uint32_t id, const std::vector<Point>& ranges,
                        size_t samples, Rng& rng) {
  MovingObject animal;
  animal.id = id;
  Point current =
      ranges[static_cast<size_t>(rng.UniformInt(0, ranges.size() - 1))];
  for (size_t i = 0; i < samples; ++i) {
    // Pick a waypoint near a random seasonal range and walk towards it in
    // one step with jitter (a coarse hourly sampling of the movement).
    const Point& range =
        ranges[static_cast<size_t>(rng.UniformInt(0, ranges.size() - 1))];
    const Point waypoint{range.x + rng.Gaussian(0, 800),
                         range.y + rng.Gaussian(0, 800)};
    const double step = rng.Uniform(0.2, 0.8);
    current = {current.x + (waypoint.x - current.x) * step,
               current.y + (waypoint.y - current.y) * step};
    animal.positions.push_back(current);
  }
  return animal;
}

}  // namespace

int main() {
  Rng rng(77);

  // Three herds with distinct seasonal ranges on a 30 x 20 km reserve.
  const std::vector<std::vector<Point>> herd_ranges = {
      {{4000, 5000}, {9000, 14000}},             // herd A: two ranges
      {{22000, 6000}, {26000, 15000}, {15000, 10000}},  // herd B: three
      {{12000, 3000}, {17000, 17000}},           // herd C
  };
  ProblemInstance instance;
  uint32_t id = 0;
  for (size_t h = 0; h < herd_ranges.size(); ++h) {
    for (int a = 0; a < 60; ++a) {
      instance.objects.push_back(
          MakeAnimal(id++, herd_ranges[h], /*samples=*/48, rng));
    }
  }
  std::cout << "Tracked animals: " << instance.objects.size()
            << ", 48 positions each\n";

  // Candidate station sites: a coarse service-road grid.
  for (double x = 2000; x <= 28000; x += 2000) {
    for (double y = 2000; y <= 18000; y += 2000) {
      instance.candidates.push_back({x, y});
    }
  }
  std::cout << "Candidate sites: " << instance.candidates.size()
            << " (service-road grid)\n";

  // Detection model: linear decay to zero at the 3 km telemetry range.
  SolverConfig config;
  config.pf = std::make_shared<LinearPF>(/*rho=*/0.9, /*range_meters=*/3000.0);
  config.tau = 0.8;
  config.top_k = 3;

  const SolverResult result = PinocchioVOSolver().Solve(instance, config);
  const auto top = result.TopK(3);
  TablePrinter table("Best station sites", {"rank", "x (km)", "y (km)",
                                            "animals covered"});
  for (size_t i = 0; i < top.size(); ++i) {
    const Point& p = instance.candidates[top[i]];
    table.AddRow({std::to_string(i + 1), FormatDouble(p.x / 1000, 1),
                  FormatDouble(p.y / 1000, 1),
                  std::to_string(result.influence[top[i]])});
  }
  table.Print(std::cout);

  // --- Seasonal migration: herd D arrives; update incrementally.
  IncrementalPrimeLS live(instance.candidates, config);
  for (const MovingObject& o : instance.objects) live.AddObject(o);

  const std::vector<Point> herd_d = {{6000, 16000}, {3000, 10000}};
  std::cout << "\nHerd D (40 animals) migrates into the north-west...\n";
  for (int a = 0; a < 40; ++a) {
    live.AddObject(MakeAnimal(id++, herd_d, 48, rng));
  }
  const auto new_top = live.TopK(3);
  TablePrinter after("Best station sites after the migration",
                     {"rank", "x (km)", "y (km)", "animals covered"});
  for (size_t i = 0; i < new_top.size(); ++i) {
    const Point& p = instance.candidates[new_top[i].first];
    after.AddRow({std::to_string(i + 1), FormatDouble(p.x / 1000, 1),
                  FormatDouble(p.y / 1000, 1),
                  std::to_string(new_top[i].second)});
  }
  after.Print(std::cout);

  const auto best = live.Best();
  if (best && best->first != result.best_candidate) {
    std::cout << "\nThe migration moved the optimal site — no re-solve "
                 "needed, counters were maintained incrementally.\n";
  } else {
    std::cout << "\nThe optimal site is unchanged by the migration.\n";
  }
  return 0;
}
