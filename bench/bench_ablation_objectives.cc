// Objective ablation (extensions beyond the paper):
//
// 1. Threshold objective (PRIME-LS: count objects with Pr >= tau) versus
//    expectation objective (sum of Pr over objects): how often do they
//    pick the same site, and how much does the winner of one objective
//    lose under the other?
// 2. Discrete candidates versus continuous placement: how much influence
//    is left on the table by restricting the facility to the candidate
//    set, and what does the branch-and-bound search cost?

#include <iostream>

#include "bench_common.h"
#include "core/continuous_placement.h"
#include "core/expected_influence_solver.h"
#include "core/influence_query.h"
#include "core/object_store.h"

namespace pinocchio {
namespace bench {
namespace {

void RunDataset(const std::string& name, const CheckinDataset& dataset,
                const BenchContext& ctx) {
  const size_t m = ScaledCandidates(ctx, kDefaultCandidates);
  const ProblemInstance instance = MakeInstance(dataset, m, ctx.seed);

  // ---- 1. Threshold vs expectation.
  TablePrinter objectives(
      "Threshold vs expectation objective (" + name + ")",
      {"tau", "threshold pick", "expectation pick", "same site",
       "thr. winner's E[inf]", "exp. winner's E[inf]", "refined"});
  for (double tau : {0.3, 0.5, 0.7, 0.9}) {
    const SolverConfig config = DefaultConfig(tau);
    const SolverResult threshold =
        PinocchioVOSolver().Solve(instance, config);
    const ExpectedInfluenceResult expectation =
        SolveExpectedInfluence(instance, config);
    const ExpectedInfluenceResult exact_scores =
        SolveExpectedInfluenceNaive(instance, config);
    objectives.AddRow(
        {FormatDouble(tau, 1), "#" + std::to_string(threshold.best_candidate),
         "#" + std::to_string(expectation.best_candidate),
         threshold.best_candidate == expectation.best_candidate ? "yes" : "no",
         FormatDouble(exact_scores.score[threshold.best_candidate], 1),
         FormatDouble(expectation.best_score, 1),
         std::to_string(expectation.candidates_refined) + "/" +
             std::to_string(m)});
  }
  objectives.Print(std::cout);

  // ---- 2. Discrete vs continuous placement.
  TablePrinter continuous(
      "Discrete candidates vs continuous placement (" + name + ")",
      {"tau", "best candidate inf", "continuous inf", "gain", "cells",
       "time"});
  for (double tau : {0.5, 0.7}) {
    const SolverConfig config = DefaultConfig(tau);
    const SolverResult discrete = PinocchioVOSolver().Solve(instance, config);
    ContinuousPlacementOptions options;
    // The cell bound is O(r) per cell and plateaus near the optimum, so
    // deep refinement buys little; a modest budget already captures the
    // attainable gain (the reported upper bound brackets the remainder).
    options.resolution_meters = 250.0;
    options.max_cells = 2000;
    const ContinuousPlacementResult anywhere =
        PlaceAnywhere(instance.objects, Mbr(), config, options);
    const double gain =
        100.0 *
        (static_cast<double>(anywhere.influence) -
         static_cast<double>(discrete.best_influence)) /
        std::max<double>(1.0, static_cast<double>(discrete.best_influence));
    continuous.AddRow({FormatDouble(tau, 1),
                       std::to_string(discrete.best_influence),
                       std::to_string(anywhere.influence),
                       FormatDouble(gain, 1) + "%",
                       std::to_string(anywhere.cells_explored),
                       FormatSeconds(anywhere.elapsed_seconds)});
  }
  continuous.Print(std::cout);
}

void Main() {
  const BenchContext ctx = BenchContext::FromEnv();
  ctx.Announce("ablation_objectives");
  RunDataset("Foursquare", MakeFoursquare(ctx), ctx);
  RunDataset("Gowalla", MakeGowalla(ctx), ctx);
}

}  // namespace
}  // namespace bench
}  // namespace pinocchio

int main() {
  pinocchio::bench::Main();
  return 0;
}
