// The serving layer's wire protocol: a standalone, socket-free codec.
//
// Frames are length-prefixed binary, little-endian throughout:
//
//   +-----------+-----------+---------+-------------------+
//   | u32 len   | u8 version| u8 type | payload (len - 2) |
//   +-----------+-----------+---------+-------------------+
//
// `len` counts everything after itself (version byte, type byte and
// payload) and is capped at kMaxFrameBody; oversized, truncated or
// garbage frames are rejected with a decode error, never undefined
// behaviour. All integers are fixed-width little-endian; doubles are
// IEEE-754 bit patterns (memcpy'd), so encode/decode round-trips are
// bit-identical — the differential harness and the protocol tests rely
// on that.
//
// This layer deliberately knows nothing about sockets: `EncodeRequest`/
// `DecodeRequest` (and the response counterparts) translate between
// structs and byte vectors, and `FrameAssembler` turns an arbitrary byte
// stream into whole frames. src/serve/server.cc and client.cc feed it
// from file descriptors; the tests and the fuzz driver feed it from
// buffers.

#ifndef PINOCCHIO_SERVE_PROTOCOL_H_
#define PINOCCHIO_SERVE_PROTOCOL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/moving_object.h"
#include "geo/point.h"

namespace pinocchio {
namespace serve {

/// Protocol version carried in every frame; bumped on breaking changes.
/// v2: StatsResponse gained solve_threads / solve_busy_seconds.
/// v3: solve rankings carry a per-entry `exact` flag; new skyline and
///     diversified query families; StatsResponse gained
///     skyline_requests / diverse_requests.
/// v4: streaming ingestion — kObserve (batched timestamped positions)
///     and kAdvance requests answered by kStream; StatsResponse gained
///     the stream_* / observe / advance counters.
/// v5: approximate tier — kApproxTopK (k, epsilon, delta, seed) answered
///     by kApprox (entries flagged approximate with certified [lo, hi]
///     influence brackets); StatsResponse gained approx_requests.
inline constexpr uint8_t kProtocolVersion = 5;

/// Upper bound on the frame body (version + type + payload) in bytes.
/// Large enough for a multi-thousand-entry ranking or a bulk update,
/// small enough that a hostile length prefix cannot balloon memory.
inline constexpr uint32_t kMaxFrameBody = 4u << 20;  // 4 MiB

// --------------------------------------------------------------- requests

enum class RequestType : uint8_t {
  kSolve = 1,   // full solve under the snapshot's prepared config
  kTopK = 2,    // top-k ranking with the default algorithm
  kProbe = 3,   // single-candidate influence probe at an arbitrary point
  kWhatIf = 4,  // solve under altered (tau, rho, lambda) via Reprepare
  kUpdate = 5,  // append objects/candidates; triggers rebuild + swap
  kStats = 6,   // server/service statistics
  kSkyline = 7,      // influence/cost skyline over all candidates
  kDiversified = 8,  // greedy diversified top-k with min separation
  kObserve = 9,  // batched timestamped observations into the stream window
  kAdvance = 10,  // advance the stream clock, expiring old observations
  kApproxTopK = 11,  // sampling-sketch top-k with certified error brackets
};

/// Wire ids of the solvers a SolveRequest may name.
enum class WireAlgorithm : uint8_t {
  kPinVO = 0,
  kPin = 1,
  kNaive = 2,
};

struct SolveRequest {
  WireAlgorithm algorithm = WireAlgorithm::kPinVO;
  /// Number of (candidate, influence) pairs wanted in the response.
  uint32_t top_k = 1;
};

struct TopKRequest {
  uint32_t k = 1;
};

struct ProbeRequest {
  Point location{0.0, 0.0};
};

struct WhatIfRequest {
  double tau = 0.7;
  double rho = 0.9;
  double lambda = 1.0;
  uint32_t top_k = 1;
};

/// One appended object: an id plus its sampled positions.
struct UpdateObject {
  uint32_t object_id = 0;
  std::vector<Point> positions;
};

struct UpdateRequest {
  std::vector<UpdateObject> objects;
  std::vector<Point> candidates;
};

struct StatsRequest {};

/// Influence/cost skyline: cost(c) is the distance from candidate c to
/// `cost_origin` (e.g. a depot or a landmark the deployer must reach).
struct SkylineRequest {
  Point cost_origin{0.0, 0.0};
};

/// Greedy diversified top-k: maximise marginal influence coverage subject
/// to every pair of selected candidates being >= min_separation apart.
/// min_separation 0 reduces to plain multi-facility selection.
struct DiversifiedRequest {
  uint32_t k = 1;
  double min_separation = 0.0;
};

/// One timestamped position observation for the streaming engine.
struct Observation {
  uint32_t object_id = 0;
  double time = 0.0;
  Point position{0.0, 0.0};
};

/// A batch of observations applied in order. Batching is the staleness
/// lever: the stream state is exact as of the last applied observation,
/// so a client that batches N observations per frame trades N round
/// trips for a best answer that lags by at most one batch.
struct ObserveRequest {
  std::vector<Observation> observations;
};

/// Advances the stream clock without an observation (expiry only).
struct AdvanceRequest {
  double time = 0.0;
};

/// Approximate top-k through the sampling-sketch tier: every returned
/// influence is a certified [lo, hi] bracket containing the exact value
/// with probability >= 1 - delta per candidate, of width at most
/// 2 * epsilon * num_objects. Epsilon in (0, 1], delta in (0, 1); the
/// seed keys the deterministic sample, so equal requests against the
/// same epoch return bit-identical answers.
struct ApproxTopKRequest {
  uint32_t k = 1;
  double epsilon = 0.05;
  double delta = 0.01;
  uint64_t seed = 0;
};

/// A decoded request: `type` selects which member is meaningful.
struct Request {
  RequestType type = RequestType::kStats;
  SolveRequest solve;
  TopKRequest top_k;
  ProbeRequest probe;
  WhatIfRequest what_if;
  UpdateRequest update;
  SkylineRequest skyline;
  DiversifiedRequest diversified;
  ObserveRequest observe;
  AdvanceRequest advance;
  ApproxTopKRequest approx;
};

// -------------------------------------------------------------- responses

enum class ResponseType : uint8_t {
  kError = 0,
  kSolve = 1,  // also answers kTopK and kWhatIf
  kProbe = 3,
  kUpdate = 5,
  kStats = 6,
  kSkyline = 7,
  kDiversified = 8,
  kStream = 9,  // answers kObserve and kAdvance
  kApprox = 10,  // answers kApproxTopK
};

enum class ErrorCode : uint8_t {
  kNone = 0,
  kBadFrame = 1,
  kUnsupportedVersion = 2,
  kUnknownType = 3,
  kBadRequest = 4,
  kShuttingDown = 5,
  kInternal = 6,
};

struct ErrorResponse {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct RankedCandidate {
  uint32_t candidate = 0;
  int64_t influence = 0;
  /// True when `influence` is the exact influence of this candidate;
  /// false when it is only the VO solver's lower bound (candidates past
  /// the top-k prefix whose validation was cut off early).
  bool exact = true;
};

/// Answer to kSolve / kTopK / kWhatIf. Every field is computed against
/// exactly one snapshot epoch; `epoch`, `num_objects` and
/// `num_candidates` let clients assert that consistency.
struct SolveResponse {
  uint64_t epoch = 0;
  uint64_t num_objects = 0;
  uint64_t num_candidates = 0;
  uint32_t best_candidate = 0;
  int64_t best_influence = 0;
  double solve_seconds = 0.0;
  std::vector<RankedCandidate> topk;
};

struct ProbeResponse {
  uint64_t epoch = 0;
  uint64_t num_objects = 0;
  int64_t influence = 0;
  double solve_seconds = 0.0;
};

/// One skyline member: not dominated on (influence desc, cost asc) by any
/// other candidate.
struct SkylineEntry {
  uint32_t candidate = 0;
  int64_t influence = 0;
  double cost = 0.0;
};

/// Answer to kSkyline; members are sorted by (cost asc, candidate asc).
struct SkylineResponse {
  uint64_t epoch = 0;
  uint64_t num_objects = 0;
  uint64_t num_candidates = 0;
  /// Candidates eliminated by bound domination without exact validation.
  uint64_t bound_skipped = 0;
  double solve_seconds = 0.0;
  std::vector<SkylineEntry> skyline;
};

/// One greedy pick: `coverage` is the union influence after this pick.
struct DiverseEntry {
  uint32_t candidate = 0;
  int64_t coverage = 0;
};

/// Answer to kDiversified; entries are in selection order.
struct DiverseResponse {
  uint64_t epoch = 0;
  uint64_t num_objects = 0;
  uint64_t num_candidates = 0;
  uint64_t gain_evaluations = 0;
  double solve_seconds = 0.0;
  std::vector<DiverseEntry> selected;
};

/// Answer to kObserve / kAdvance: the stream state exactly as of the last
/// applied observation (or the advanced clock).
struct StreamResponse {
  /// Stream clock after the request; the window is [now - W, now].
  double now = 0.0;
  uint64_t live_objects = 0;
  uint64_t live_positions = 0;
  /// Observations applied by this request (all-or-nothing: a rejected
  /// batch applies none and returns kError instead).
  uint64_t applied = 0;
  bool has_best = false;
  uint32_t best_candidate = 0;
  int64_t best_influence = 0;
};

/// One approximate ranking entry. `estimate` is the bracket midpoint;
/// [lo, hi] is the certified influence bracket. `exact` marks entries
/// whose whole verification set was decided (degenerate bracket,
/// unconditional) — including every entry when the service refined the
/// answer exactly.
struct ApproxRankedCandidate {
  uint32_t candidate = 0;
  int64_t estimate = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  bool exact = false;
};

/// Answer to kApproxTopK; entries are estimate-descending.
struct ApproxResponse {
  uint64_t epoch = 0;
  uint64_t num_objects = 0;
  uint64_t num_candidates = 0;
  double solve_seconds = 0.0;
  std::vector<ApproxRankedCandidate> entries;
};

struct UpdateResponse {
  /// Epoch current when the update was accepted; the rebuilt snapshot
  /// will carry a strictly larger epoch.
  uint64_t epoch = 0;
  /// Updates queued behind this one (including it) at accept time.
  uint64_t pending_updates = 0;
  bool accepted = false;
};

struct StatsResponse {
  uint64_t epoch = 0;
  uint64_t num_objects = 0;
  uint64_t num_candidates = 0;
  uint64_t snapshot_swaps = 0;
  uint64_t pending_updates = 0;
  uint64_t solve_requests = 0;
  uint64_t topk_requests = 0;
  uint64_t probe_requests = 0;
  uint64_t whatif_requests = 0;
  uint64_t update_requests = 0;
  uint64_t stats_requests = 0;
  uint64_t skyline_requests = 0;
  uint64_t diverse_requests = 0;
  uint64_t error_responses = 0;
  double uptime_seconds = 0.0;
  /// Solve-thread budget the service runs the morsel engine with.
  uint64_t solve_threads = 0;
  /// Process-wide morsel-engine worker busy time; utilisation is
  /// solve_busy_seconds / (uptime_seconds * solve_threads).
  double solve_busy_seconds = 0.0;
  // ---- streaming (v4): all zero when the server runs without a window.
  uint64_t observe_requests = 0;
  uint64_t advance_requests = 0;
  /// Observations applied into the stream window since startup.
  uint64_t stream_observations = 0;
  uint64_t stream_live_objects = 0;
  uint64_t stream_live_positions = 0;
  /// Configured window width; 0 means streaming is disabled.
  double stream_window_seconds = 0.0;
  // ---- approximate tier (v5).
  uint64_t approx_requests = 0;
};

struct Response {
  ResponseType type = ResponseType::kError;
  ErrorResponse error;
  SolveResponse solve;
  ProbeResponse probe;
  UpdateResponse update;
  StatsResponse stats;
  SkylineResponse skyline;
  DiverseResponse diverse;
  StreamResponse stream;
  ApproxResponse approx;
};

// ------------------------------------------------------------------ codec

/// Serialises a request/response into one whole frame (length prefix
/// included), ready to write to a stream.
std::vector<uint8_t> EncodeRequest(const Request& request);
std::vector<uint8_t> EncodeResponse(const Response& response);

/// Decodes one frame *body* (the bytes after the length prefix: version,
/// type, payload). Returns nullopt — with a human-readable reason in
/// `*error` when non-null — on any malformed input: wrong version,
/// unknown type, truncated or over-long payload. Never reads out of
/// bounds and never throws.
std::optional<Request> DecodeRequest(std::span<const uint8_t> body,
                                     std::string* error = nullptr);
std::optional<Response> DecodeResponse(std::span<const uint8_t> body,
                                       std::string* error = nullptr);

/// Incremental frame splitter for a byte stream. Feed arbitrary chunks
/// with Append(); NextFrame() yields complete frame bodies in order.
/// A length prefix above kMaxFrameBody poisons the stream (the
/// connection must be dropped — resynchronisation is impossible).
class FrameAssembler {
 public:
  /// Appends raw bytes received from the peer.
  void Append(std::span<const uint8_t> data);

  /// Pops the next complete frame body, or nullopt when more bytes are
  /// needed (or the stream is poisoned).
  std::optional<std::vector<uint8_t>> NextFrame();

  /// True once an oversized length prefix has been seen.
  bool poisoned() const { return poisoned_; }

  /// Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::deque<uint8_t> buffer_;
  bool poisoned_ = false;
};

/// Human-readable names for logs and the client CLI.
const char* RequestTypeName(RequestType type);
const char* ResponseTypeName(ResponseType type);
const char* ErrorCodeName(ErrorCode code);
const char* WireAlgorithmName(WireAlgorithm algorithm);

}  // namespace serve
}  // namespace pinocchio

#endif  // PINOCCHIO_SERVE_PROTOCOL_H_
