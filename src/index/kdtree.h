// Static bulk-built kd-tree over planar points — the third candidate-index
// option (the paper's footnote 2 notes any hierarchical spatial structure
// can replace the R-tree). Median-split construction over a contiguous
// node array; supports rectangle and circle range queries and best-first
// kNN with the same result contracts as RTree.

#ifndef PINOCCHIO_INDEX_KDTREE_H_
#define PINOCCHIO_INDEX_KDTREE_H_

#include <cstdint>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"
#include "index/rtree.h"  // RTreeEntry

namespace pinocchio {

/// Immutable kd-tree; build once, query many times.
class KdTree {
 public:
  /// Builds from `entries` (O(n log n), median splits, leaf size ~8).
  explicit KdTree(std::span<const RTreeEntry> entries);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  Mbr Bounds() const { return bounds_; }

  /// Calls `visit(entry)` for every entry inside `rect` (inclusive).
  template <typename Visitor>
  void QueryRect(const Mbr& rect, Visitor&& visit) const {
    if (empty() || rect.IsEmpty()) return;
    QueryRectNode(0, rect, visit);
  }

  /// Calls `visit(entry)` for every entry within `radius` of `center`.
  template <typename Visitor>
  void QueryCircle(const Point& center, double radius, Visitor&& visit) const {
    if (empty() || radius < 0.0) return;
    QueryCircleNode(0, center, radius * radius, visit);
  }

  std::vector<uint32_t> QueryRectIds(const Mbr& rect) const;
  std::vector<uint32_t> QueryCircleIds(const Point& center,
                                       double radius) const;

  /// k nearest entries as (id, distance), ascending by distance.
  std::vector<std::pair<uint32_t, double>> NearestNeighbors(const Point& query,
                                                            size_t k) const;

 private:
  struct Node {
    Mbr bounds;
    // Leaf: [begin, end) into entries_. Internal: children indices.
    uint32_t begin = 0;
    uint32_t end = 0;
    int32_t left = -1;
    int32_t right = -1;
    bool IsLeaf() const { return left < 0; }
  };

  int32_t Build(size_t begin, size_t end, int depth);

  template <typename Visitor>
  void QueryRectNode(size_t node_index, const Mbr& rect,
                     Visitor& visit) const {
    const Node& node = nodes_[node_index];
    if (!rect.Intersects(node.bounds)) return;
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (rect.Contains(entries_[i].point)) visit(entries_[i]);
      }
      return;
    }
    QueryRectNode(static_cast<size_t>(node.left), rect, visit);
    QueryRectNode(static_cast<size_t>(node.right), rect, visit);
  }

  template <typename Visitor>
  void QueryCircleNode(size_t node_index, const Point& center,
                       double radius_sq, Visitor& visit) const {
    const Node& node = nodes_[node_index];
    if (node.bounds.MinDistSquared(center) > radius_sq) return;
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (SquaredDistance(center, entries_[i].point) <= radius_sq) {
          visit(entries_[i]);
        }
      }
      return;
    }
    QueryCircleNode(static_cast<size_t>(node.left), center, radius_sq, visit);
    QueryCircleNode(static_cast<size_t>(node.right), center, radius_sq,
                    visit);
  }

  std::vector<RTreeEntry> entries_;  // permuted during build
  std::vector<Node> nodes_;
  Mbr bounds_;
};

}  // namespace pinocchio

#endif  // PINOCCHIO_INDEX_KDTREE_H_
