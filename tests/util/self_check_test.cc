#include "util/self_check.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/naive_solver.h"
#include "core/pinocchio_solver.h"
#include "core/prepared_instance.h"
#include "testing/instance_helpers.h"

namespace pinocchio {
namespace {

using testing_helpers::DefaultConfig;
using testing_helpers::RandomInstance;

class SelfCheckTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetSelfCheckViolationHandler(nullptr);
    SetSelfCheckEnabled(false);
  }
};

TEST_F(SelfCheckTest, SetterOverridesDefault) {
  SetSelfCheckEnabled(true);
  EXPECT_TRUE(SelfCheckEnabled());
  SetSelfCheckEnabled(false);
  EXPECT_FALSE(SelfCheckEnabled());
}

TEST_F(SelfCheckTest, InstalledHandlerInterceptsViolation) {
  std::vector<std::string> captured;
  SetSelfCheckViolationHandler(
      [&](const std::string& message) { captured.push_back(message); });
  ReportSelfCheckViolation("lemma broke");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "lemma broke");
}

TEST_F(SelfCheckTest, CleanSolveRaisesNoViolation) {
  // On a correct implementation the audit is silent; this is the "no
  // false positives" half of the self-check contract.
  SetSelfCheckEnabled(true);
  int violations = 0;
  SetSelfCheckViolationHandler([&](const std::string&) { ++violations; });
  const ProblemInstance instance = RandomInstance(321);
  const SolverConfig config = DefaultConfig();
  const PreparedInstance prepared(instance, config);
  const SolverResult pin = PinocchioSolver().Solve(prepared);
  const SolverResult naive = NaiveSolver().Solve(prepared);
  EXPECT_EQ(pin.influence, naive.influence);
  EXPECT_EQ(violations, 0);
}

using SelfCheckDeathTest = SelfCheckTest;

TEST_F(SelfCheckDeathTest, DefaultHandlerIsFatal) {
  EXPECT_DEATH(ReportSelfCheckViolation("boom goes the invariant"),
               "boom goes the invariant");
}

}  // namespace
}  // namespace pinocchio
