// The influence query service: protocol requests in, responses out,
// independent of any transport.
//
// An InfluenceService owns a SnapshotHolder plus one background rebuild
// thread. Execute() is safe to call concurrently from any number of
// request threads:
//
//   * kSolve / kTopK / kProbe acquire the current snapshot (lock-free)
//     and run entirely against that immutable state — a response is
//     internally consistent with exactly one epoch, and solve responses
//     are bit-identical to a direct Solve(const PreparedInstance&) on
//     the same snapshot.
//   * kWhatIf re-parameterises a private scratch PreparedInstance via
//     Reprepare (cheap: positions and MBRs are reused) under a mutex, so
//     tau/rho/lambda exploration never touches the published snapshot.
//   * kUpdate validates and enqueues appended objects/candidates and
//     returns immediately; the rebuild thread coalesces pending updates,
//     builds the next snapshot off to the side and publishes it with an
//     atomic swap. Readers never block on a rebuild.
//
// The service is also usable without any server in front of it — the
// tests and the differential harness call Execute() directly.

#ifndef PINOCCHIO_SERVE_SERVICE_H_
#define PINOCCHIO_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/moving_object.h"
#include "core/solver.h"
#include "core/streaming.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "util/stopwatch.h"

namespace pinocchio {
namespace serve {

struct ServiceOptions {
  /// top_k the snapshots are prepared with: VO solves guarantee exact
  /// influence for this many leading candidates, so kTopK requests up to
  /// this k ride the fast solver. Larger k falls back to the exact PIN
  /// solver (full ranking).
  size_t prepared_top_k = 16;
  /// Distance unit (metres) of the power-law PF rebuilt by what-if
  /// requests; must match the PF the service was constructed with.
  double pf_unit_meters = 100.0;
  /// Worker budget for the morsel-parallel solve engine: solve/topk
  /// requests run the parallel solvers with this many threads (0 selects
  /// the hardware concurrency). Results are bit-identical to the
  /// sequential solvers at any setting; 1 runs inline on the request
  /// thread. What-if solves stay sequential (they hold a mutex anyway).
  size_t solve_threads = 1;
  /// Width of the streaming ingestion window in seconds; 0 disables the
  /// kObserve/kAdvance request family. When enabled, the service runs a
  /// StreamingPrimeLS over the construction-time candidate set, fed by
  /// observe frames — independent of the snapshot path (see
  /// docs/ARCHITECTURE.md, "Streaming ingestion").
  double stream_window_seconds = 0.0;
  /// When true, kTopK requests ride the approximate tier at the default
  /// (epsilon, delta) below and the returned candidates are then refined
  /// to exact influences — the candidate SELECTION is approximate, every
  /// reported influence is exact. kApproxTopK requests always use their
  /// own parameters regardless of this flag.
  bool approx_default = false;
  double approx_epsilon = 0.05;
  double approx_delta = 0.01;
  uint64_t approx_seed = 0;
};

class InfluenceService {
 public:
  /// Builds the epoch-1 snapshot from `instance` under `config` and
  /// starts the rebuild thread. `config.pf` must be set; `config.top_k`
  /// is overridden by `options.prepared_top_k`.
  InfluenceService(ProblemInstance instance, SolverConfig config,
                   const ServiceOptions& options = {});

  /// Drains pending updates and joins the rebuild thread.
  ~InfluenceService();

  InfluenceService(const InfluenceService&) = delete;
  InfluenceService& operator=(const InfluenceService&) = delete;

  /// Executes one request. Thread-safe; never throws — malformed or
  /// unserviceable requests yield a kError response.
  Response Execute(const Request& request);

  /// The current snapshot (lock-free). Exposed so callers can run direct
  /// Solve() calls against the very same state a response came from.
  SnapshotPtr snapshot() const { return holder_.Acquire(); }

  /// Blocks until every update accepted so far has been applied and
  /// published. Used by tests and by graceful shutdown.
  void DrainUpdates();

  /// Number of snapshot swaps published so far (epoch - 1).
  uint64_t snapshot_swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  Response DoSolve(const SolveRequest& request);
  Response DoTopK(const TopKRequest& request);
  Response DoProbe(const ProbeRequest& request);
  Response DoWhatIf(const WhatIfRequest& request);
  Response DoUpdate(const UpdateRequest& request);
  Response DoStats();
  Response DoSkyline(const SkylineRequest& request);
  Response DoDiversified(const DiversifiedRequest& request);
  Response DoObserve(const ObserveRequest& request);
  Response DoAdvance(const AdvanceRequest& request);
  Response DoApproxTopK(const ApproxTopKRequest& request);
  /// The approx_default fast-path behind DoTopK: approximate selection,
  /// exact per-candidate refinement.
  Response DoTopKViaApprox(size_t k);
  static Response MakeError(ErrorCode code, std::string message);

  /// Fills a SolveResponse from a result computed against `snap`.
  static Response MakeSolveResponse(const ServerSnapshot& snap,
                                    const SolverResult& result, size_t k);

  void RebuildLoop();

  ServiceOptions options_;
  SnapshotHolder holder_;
  Stopwatch uptime_;

  // Pending updates, guarded by update_mu_. The rebuild thread swallows
  // the whole queue per iteration (coalescing bursts into one build).
  std::mutex update_mu_;
  std::condition_variable update_cv_;     // signals: work or shutdown
  std::condition_variable drained_cv_;    // signals: queue empty + idle
  std::vector<UpdateRequest> pending_updates_;
  bool rebuild_in_progress_ = false;
  bool stopping_ = false;
  std::thread rebuild_thread_;

  // Streaming ingestion state, guarded by stream_mu_. Constructed once
  // over the epoch-1 candidate set when stream_window_seconds > 0; null
  // when streaming is disabled. All client input is validated BEFORE any
  // engine call — the engine's monotonic-time check must stay
  // unreachable from the wire (a hostile frame must never abort the
  // server).
  std::mutex stream_mu_;
  std::unique_ptr<StreamingPrimeLS> stream_;

  // What-if scratch state, guarded by whatif_mu_: a PreparedInstance
  // cloned from the current snapshot's instance and Repepared per
  // request. Rebuilt from scratch only when the snapshot epoch moved.
  std::mutex whatif_mu_;
  std::unique_ptr<PreparedInstance> whatif_prepared_;
  uint64_t whatif_epoch_ = 0;

  // Request counters (relaxed; they are reporting, not synchronisation).
  std::atomic<uint64_t> solve_requests_{0};
  std::atomic<uint64_t> topk_requests_{0};
  std::atomic<uint64_t> probe_requests_{0};
  std::atomic<uint64_t> whatif_requests_{0};
  std::atomic<uint64_t> update_requests_{0};
  std::atomic<uint64_t> stats_requests_{0};
  std::atomic<uint64_t> skyline_requests_{0};
  std::atomic<uint64_t> diverse_requests_{0};
  std::atomic<uint64_t> observe_requests_{0};
  std::atomic<uint64_t> advance_requests_{0};
  std::atomic<uint64_t> approx_requests_{0};
  std::atomic<uint64_t> stream_observations_{0};
  std::atomic<uint64_t> error_responses_{0};
  std::atomic<uint64_t> swaps_{0};
};

}  // namespace serve
}  // namespace pinocchio

#endif  // PINOCCHIO_SERVE_SERVICE_H_
