#include "geo/convex_hull.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pinocchio {
namespace {

// Cross product of (b - a) x (c - a); positive for a left turn.
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

double PointToSegment(const Point& p, const Point& a, const Point& b) {
  const double len_sq = SquaredDistance(a, b);
  if (len_sq == 0.0) return Distance(p, a);
  const double t = std::clamp(
      ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len_sq, 0.0,
      1.0);
  return Distance(p, {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)});
}

}  // namespace

std::vector<Point> ConvexHull(std::span<const Point> points) {
  std::vector<Point> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(), [](const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  const size_t n = sorted.size();
  if (n <= 2) return sorted;

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], sorted[i]) <= 0.0) --k;
    hull[k++] = sorted[i];
  }
  // Upper hull.
  const size_t lower_size = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && Cross(hull[k - 2], hull[k - 1], sorted[i]) <= 0.0) {
      --k;
    }
    hull[k++] = sorted[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return hull;
}

ConvexPolygon::ConvexPolygon(std::span<const Point> points)
    : vertices_(ConvexHull(points)) {
  for (const Point& v : vertices_) bounds_.Expand(v);
}

double ConvexPolygon::Area() const {
  if (vertices_.size() < 3) return 0.0;
  double twice_area = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    twice_area += a.x * b.y - b.x * a.y;
  }
  return 0.5 * std::abs(twice_area);
}

bool ConvexPolygon::Contains(const Point& p) const {
  if (vertices_.empty()) return false;
  if (vertices_.size() == 1) return p == vertices_[0];
  if (vertices_.size() == 2) {
    return PointToSegment(p, vertices_[0], vertices_[1]) <= 1e-9;
  }
  // CCW polygon: p is inside iff it is left of (or on) every edge.
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    if (Cross(a, b, p) < 0.0) return false;
  }
  return true;
}

double ConvexPolygon::MaxDist(const Point& p) const {
  PINO_CHECK(!vertices_.empty());
  double best = 0.0;
  for (const Point& v : vertices_) best = std::max(best, Distance(p, v));
  return best;
}

double ConvexPolygon::MinDist(const Point& p) const {
  PINO_CHECK(!vertices_.empty());
  if (Contains(p)) return 0.0;
  if (vertices_.size() == 1) return Distance(p, vertices_[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % vertices_.size()];
    best = std::min(best, PointToSegment(p, a, b));
  }
  return best;
}

}  // namespace pinocchio
