#include "data/checkin_dataset.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pinocchio {
namespace {

// Cumulative-weight table for O(log n) categorical sampling.
class CumulativeSampler {
 public:
  explicit CumulativeSampler(const std::vector<double>& weights) {
    cumulative_.reserve(weights.size());
    double total = 0.0;
    for (double w : weights) {
      PINO_CHECK_GE(w, 0.0);
      total += w;
      cumulative_.push_back(total);
    }
    PINO_CHECK_GT(total, 0.0);
  }

  size_t Sample(Rng& rng) const {
    const double target = rng.NextDouble() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
    return std::min(static_cast<size_t>(it - cumulative_.begin()),
                    cumulative_.size() - 1);
  }

 private:
  std::vector<double> cumulative_;
};

double ContinuousPowerLawMean(double lo, double hi, double alpha) {
  // E[X] for density proportional to x^-alpha on [lo, hi]. The integrals
  // of x^(1-alpha) and x^-alpha degenerate to logarithms at alpha = 2 and
  // alpha = 1 respectively; switch to the log form near those poles.
  const auto integral = [&](double exponent) {
    // int_lo^hi x^(exponent-1) dx
    if (std::abs(exponent) < 1e-9) return std::log(hi / lo);
    return (std::pow(hi, exponent) - std::pow(lo, exponent)) / exponent;
  };
  return integral(2.0 - alpha) / integral(1.0 - alpha);
}

}  // namespace

double CalibratePowerLawAlpha(double lo, double hi, double target_mean) {
  PINO_CHECK_GT(lo, 0.0);
  PINO_CHECK_GT(hi, lo);
  PINO_CHECK_GT(target_mean, lo);
  PINO_CHECK_LT(target_mean, hi);
  // The mean is strictly decreasing in alpha; bisect on (1, 8]. Values of
  // alpha extremely close to 1 make the mean approach the uniform mean.
  double alpha_lo = 1.0 + 1e-6;  // heavy tail, large mean
  double alpha_hi = 8.0;         // concentrated near lo, small mean
  if (ContinuousPowerLawMean(lo, hi, alpha_hi) > target_mean) return alpha_hi;
  if (ContinuousPowerLawMean(lo, hi, alpha_lo) < target_mean) return alpha_lo;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (alpha_lo + alpha_hi);
    if (ContinuousPowerLawMean(lo, hi, mid) > target_mean) {
      alpha_lo = mid;
    } else {
      alpha_hi = mid;
    }
  }
  return 0.5 * (alpha_lo + alpha_hi);
}

CheckinDataset GenerateCheckinDataset(const DatasetSpec& spec) {
  PINO_CHECK_GT(spec.num_users, 0u);
  PINO_CHECK_GT(spec.num_venues, 0u);
  PINO_CHECK_GE(spec.max_checkins_per_user, spec.min_checkins_per_user);
  PINO_CHECK_GE(spec.max_anchors_per_user, spec.min_anchors_per_user);
  PINO_CHECK_GE(spec.min_anchors_per_user, 1u);

  Rng rng(spec.seed);
  CheckinDataset dataset;
  dataset.spec = spec;

  const double ex = spec.extent_x_km * 1000.0;
  const double ey = spec.extent_y_km * 1000.0;
  const double cluster_sigma = spec.cluster_sigma_km * 1000.0;
  const double anchor_sigma = spec.anchor_sigma_km * 1000.0;
  const auto clamp_to_extent = [&](Point p) {
    p.x = std::clamp(p.x, 0.0, ex);
    p.y = std::clamp(p.y, 0.0, ey);
    return p;
  };

  // Urban hotspots with skewed popularity (Fig. 6a's clustered geography).
  std::vector<Point> cluster_centers;
  std::vector<double> cluster_weights;
  cluster_centers.reserve(spec.num_clusters);
  for (size_t i = 0; i < spec.num_clusters; ++i) {
    cluster_centers.push_back(
        {rng.Uniform(0.05 * ex, 0.95 * ex), rng.Uniform(0.05 * ey, 0.95 * ey)});
    cluster_weights.push_back(static_cast<double>(
        rng.PowerLawInt(1, 1000, spec.cluster_weight_alpha)));
  }
  const CumulativeSampler cluster_sampler(cluster_weights);

  // Venues: hotspot + Gaussian jitter; base popularity is power-law skewed.
  dataset.venues.reserve(spec.num_venues);
  std::vector<double> venue_weights;
  venue_weights.reserve(spec.num_venues);
  for (size_t v = 0; v < spec.num_venues; ++v) {
    const Point& center = cluster_centers[cluster_sampler.Sample(rng)];
    const Point pos = clamp_to_extent({rng.Gaussian(center.x, cluster_sigma),
                                       rng.Gaussian(center.y, cluster_sigma)});
    dataset.venues.push_back(pos);
    venue_weights.push_back(static_cast<double>(rng.PowerLawInt(
        1, spec.venue_popularity_max, spec.venue_popularity_alpha)));
  }
  const CumulativeSampler venue_sampler(venue_weights);
  dataset.venue_checkins.assign(spec.num_venues, 0);

  // Per-user check-in counts: power law calibrated to the target mean.
  const double target_mean = static_cast<double>(spec.target_checkins) /
                             static_cast<double>(spec.num_users);
  const double lo = static_cast<double>(spec.min_checkins_per_user);
  const double hi = static_cast<double>(spec.max_checkins_per_user);
  // The discrete sampler floors a continuous draw, losing ~0.5 on average.
  const double alpha = CalibratePowerLawAlpha(
      lo, hi, std::clamp(target_mean + 0.5, lo + 1e-3, hi - 1e-3));

  // Users: a few mobility anchors spread across hotspots, then check-ins
  // chosen by venue popularity damped by the distance-decay law of [21]
  // (rejection sampling against the base popularity proposal).
  dataset.objects.reserve(spec.num_users);
  constexpr int kMaxRejectionTries = 256;
  for (size_t u = 0; u < spec.num_users; ++u) {
    MovingObject object;
    object.id = static_cast<uint32_t>(u);
    const auto n_u = static_cast<size_t>(
        rng.PowerLawInt(static_cast<int64_t>(spec.min_checkins_per_user),
                        static_cast<int64_t>(spec.max_checkins_per_user),
                        alpha));

    const auto num_anchors = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(spec.min_anchors_per_user),
        static_cast<int64_t>(spec.max_anchors_per_user)));
    const bool local = rng.NextDouble() < spec.local_user_fraction;
    // Locals place every anchor around one hotspot; roamers draw each
    // anchor from an independently chosen hotspot.
    const Point& home_center = cluster_centers[cluster_sampler.Sample(rng)];
    std::vector<Point> anchors;
    anchors.reserve(num_anchors);
    for (size_t a = 0; a < num_anchors; ++a) {
      const Point& center =
          local ? home_center : cluster_centers[cluster_sampler.Sample(rng)];
      anchors.push_back(clamp_to_extent({rng.Gaussian(center.x, anchor_sigma),
                                         rng.Gaussian(center.y, anchor_sigma)}));
    }

    object.positions.reserve(n_u);
    std::vector<size_t> history;
    history.reserve(n_u);
    for (size_t i = 0; i < n_u; ++i) {
      size_t venue = 0;
      if (!history.empty() && rng.NextDouble() < spec.revisit_probability) {
        // Preferential return: revisit a venue from the user's history,
        // weighted by how often it was visited (pick a uniform past visit).
        venue = history[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(history.size()) - 1))];
      } else {
        // Exploration: venue popularity damped by distance decay from a
        // random anchor (rejection sampling against the popularity
        // proposal).
        const Point& anchor =
            anchors[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(num_anchors) - 1))];
        for (int attempt = 0; attempt < kMaxRejectionTries; ++attempt) {
          venue = venue_sampler.Sample(rng);
          const double d_km =
              Distance(anchor, dataset.venues[venue]) / 1000.0;
          const double accept = std::pow(1.0 + d_km, -spec.decay_lambda);
          if (rng.NextDouble() < accept) break;
        }
      }
      history.push_back(venue);
      object.positions.push_back(dataset.venues[venue]);
      ++dataset.venue_checkins[venue];
    }
    dataset.objects.push_back(std::move(object));
  }
  return dataset;
}

size_t CheckinDataset::TotalCheckins() const {
  size_t total = 0;
  for (const MovingObject& o : objects) total += o.positions.size();
  return total;
}

DatasetStats ComputeStats(const CheckinDataset& dataset) {
  DatasetStats stats;
  stats.user_count = dataset.objects.size();
  stats.venue_count = dataset.venues.size();
  Mbr extent = Mbr::Of(dataset.venues);
  double sum_w = 0.0, sum_h = 0.0;
  stats.min_checkins_per_user = std::numeric_limits<size_t>::max();
  for (const MovingObject& o : dataset.objects) {
    const size_t n = o.positions.size();
    stats.checkin_count += n;
    stats.min_checkins_per_user = std::min(stats.min_checkins_per_user, n);
    stats.max_checkins_per_user = std::max(stats.max_checkins_per_user, n);
    const Mbr mbr = o.ActivityMbr();
    sum_w += mbr.width();
    sum_h += mbr.height();
    extent.Expand(mbr);
  }
  if (stats.user_count > 0) {
    stats.avg_checkins_per_user = static_cast<double>(stats.checkin_count) /
                                  static_cast<double>(stats.user_count);
    sum_w /= static_cast<double>(stats.user_count);
    sum_h /= static_cast<double>(stats.user_count);
  } else {
    stats.min_checkins_per_user = 0;
  }
  stats.extent_x_km = extent.width() / 1000.0;
  stats.extent_y_km = extent.height() / 1000.0;
  stats.avg_object_mbr_x_km = sum_w / 1000.0;
  stats.avg_object_mbr_y_km = sum_h / 1000.0;
  return stats;
}

CandidateSample SampleCandidates(const CheckinDataset& dataset, size_t count,
                                 uint64_t seed) {
  PINO_CHECK_LE(count, dataset.venues.size());
  Rng rng(seed);
  CandidateSample sample;
  sample.venue_indices = rng.SampleWithoutReplacement(dataset.venues.size(),
                                                      count);
  sample.points.reserve(count);
  sample.ground_truth.reserve(count);
  for (size_t v : sample.venue_indices) {
    sample.points.push_back(dataset.venues[v]);
    sample.ground_truth.push_back(dataset.venue_checkins[v]);
  }
  return sample;
}

ProblemInstance MakeInstance(const CheckinDataset& dataset,
                             const CandidateSample& sample) {
  ProblemInstance instance;
  instance.objects = dataset.objects;
  instance.candidates = sample.points;
  return instance;
}

ProblemInstance MakeInstance(const CheckinDataset& dataset,
                             size_t num_candidates, uint64_t seed) {
  return MakeInstance(dataset, SampleCandidates(dataset, num_candidates, seed));
}

}  // namespace pinocchio
